(** Calibration persistence.

    The real toolflow fetches calibration logs from the IBM Quantum
    Experience API and archives them (§6); this module provides the
    equivalent: a plain-text, line-oriented, diff-friendly format for
    saving a day's calibration and reloading it later, so experiments can
    be pinned to archived machine states.

    Format (one record per line, '#' comments allowed):

    {v
    nisq-calibration 1
    topology grid 2 8          # or: topology graph <n> a-b a-b ...
    day 3
    qubit <h> t1_us t2_us readout_error single_error
    edge <a> <b> cnot_error cnot_duration_slots
    v} *)

val to_string : Calibration.t -> string

val of_string : string -> Calibration.t
(** Raises [Failure] with a line-numbered message on malformed input,
    missing qubits/edges, or values out of range. *)

val save : Calibration.t -> path:string -> unit

val load : path:string -> Calibration.t
