let topology = Topology.grid ~rows:2 ~cols:8

let default_seed = 20190131

let calibration ?(seed = default_seed) ~day () =
  Calib_gen.generate ~topology ~seed ~day ()

let calibration_series ?(seed = default_seed) ~days () =
  Calib_gen.series ~topology ~seed ~days ()

let high_variance_calibration ?(seed = default_seed) ~day () =
  Calib_gen.generate ~params:Calib_gen.high_variance ~topology ~seed ~day ()
