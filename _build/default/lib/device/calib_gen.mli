(** Synthetic daily calibration data.

    Stand-in for the IBM Quantum Experience calibration logs (§2). Each
    machine element gets a *persistent* quality bias (manufacturing
    variation: some qubits/couplers are durably better than others, per
    Klimov et al. [18]) multiplied by a *daily* drift factor, both
    log-normal, reproducing the published statistics:

    - CNOT error: mean ≈ 0.04, up to ≈ 9.0× spatio-temporal variation;
    - readout error: mean ≈ 0.07, up to ≈ 5.9× variation;
    - T2: mean ≈ 70 µs, up to ≈ 9.2× variation, worst qubit always above
      300 timeslots;
    - single-qubit gate error: ≈ 0.002;
    - CNOT durations: persistent per edge, varying ≈ 1.8× across edges.

    Generation is deterministic in [(seed, day)]: day [d] of seed [s] can
    be regenerated without generating days [0..d-1]. *)

type params = {
  cnot_err_median : float;
  cnot_err_spatial_sigma : float;  (** log-space σ of the persistent bias *)
  cnot_err_temporal_sigma : float;  (** log-space σ of the daily drift *)
  cnot_err_clamp : float * float;
  readout_err_median : float;
  readout_err_spatial_sigma : float;
  readout_err_temporal_sigma : float;
  readout_err_clamp : float * float;
  t2_median_us : float;
  t2_spatial_sigma : float;
  t2_temporal_sigma : float;
  t2_clamp_us : float * float;
  single_err_median : float;
  single_err_sigma : float;
  cnot_duration_slots : int * int;  (** inclusive per-edge range *)
}

val default : params
(** Tuned to the IBMQ16 statistics quoted above. *)

val high_variance : params
(** A machine with twice the log-space spread — used to study the "when
    machine state has high variability" regime where the paper reports
    R-SMT⋆'s largest wins (§7, up to 9.2× over T-SMT⋆). *)

val generate :
  ?params:params ->
  topology:Topology.t ->
  seed:int ->
  day:int ->
  unit ->
  Calibration.t
(** Calibration for one day. *)

val series :
  ?params:params ->
  topology:Topology.t ->
  seed:int ->
  days:int ->
  unit ->
  Calibration.t array
(** [days] consecutive daily calibrations sharing the persistent biases. *)
