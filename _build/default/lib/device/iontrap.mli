(** An idealized 16-qubit trapped-ion machine model.

    The paper's conclusion notes the techniques "can be adapted for other
    qubit technologies such as trapped ions" (§9, citing Debnath et al.).
    Ion traps offer all-to-all connectivity (no SWAPs ever) but slower
    two-qubit gates; this module instantiates that trade-off so the
    topology-richness ablation can compare like against like:

    - all-to-all coupling over 16 qubits;
    - two-qubit gate durations ≈ 4× the superconducting machine's
      (Mølmer–Sørensen gates run ~100 µs vs IBMQ16's ~300 ns; we compress
      the real 300× gap to keep timeslot counts readable, preserving the
      direction of the trade-off);
    - comparable gate fidelities, longer coherence times (ions hold state
      for seconds; modelled as 10× the transmon T2). *)

val topology : Topology.t
(** All-to-all over 16 qubits. *)

val default_seed : int

val calibration : ?seed:int -> day:int -> unit -> Calibration.t
(** Daily calibration with ion-trap-flavoured parameters. *)

val calibration_series : ?seed:int -> days:int -> unit -> Calibration.t array
