let topology = Topology.fully_connected 16

let default_seed = 20160804 (* Debnath et al., Nature 536 *)

let params =
  {
    Calib_gen.default with
    (* two-qubit gates: slightly better fidelity than transmon CNOTs,
       much slower *)
    Calib_gen.cnot_err_median = 0.02;
    cnot_err_spatial_sigma = 0.35;
    cnot_err_temporal_sigma = 0.2;
    cnot_err_clamp = (0.005, 0.15);
    cnot_duration_slots = (14, 18);
    (* state detection is strong in ions *)
    readout_err_median = 0.02;
    readout_err_clamp = (0.005, 0.1);
    (* coherence: effectively an order of magnitude longer *)
    t2_median_us = 620.0;
    t2_clamp_us = (250.0, 2200.0);
  }

let calibration ?(seed = default_seed) ~day () =
  Calib_gen.generate ~params ~topology ~seed ~day ()

let calibration_series ?(seed = default_seed) ~days () =
  Calib_gen.series ~params ~topology ~seed ~days ()
