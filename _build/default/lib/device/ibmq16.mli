(** The IBMQ 16 Rueschlikon machine model (§1, footnote 1).

    A 2 × 8 grid of 16 superconducting qubits; all experiments in the paper
    run on this device. The default calibration seed reproduces the
    statistics quoted in §2. *)

val topology : Topology.t
(** The 2 × 8 coupling grid. *)

val default_seed : int

val calibration : ?seed:int -> day:int -> unit -> Calibration.t
(** Daily calibration of the machine with {!Calib_gen.default} parameters. *)

val calibration_series : ?seed:int -> days:int -> unit -> Calibration.t array

val high_variance_calibration : ?seed:int -> day:int -> unit -> Calibration.t
(** Same machine on a bad day: {!Calib_gen.high_variance} parameters. *)
