(** Hardware qubit topology.

    Per §4.1 of the paper, hardware qubits are arranged as a 2-D grid of
    dimensions [Mx × My] and two-qubit operations are permitted only
    between grid-adjacent qubits; qubit [h] sits at column [h mod cols],
    row [h / cols], and IBMQ16 is the [2 × 8] instance.

    Beyond grids, this module also supports arbitrary coupling graphs
    ({!of_edges}, {!ring}, {!torus}, {!fully_connected}) — the paper's
    conclusion argues richer topologies reduce SWAP pressure, and the
    bench harness quantifies that as an ablation. Grid-specific
    machinery (coordinates, one-bend routing, rectangle reservation)
    applies only to grids; on general graphs the compiler falls back to
    best-path routing with path reservation. *)

type t

val grid : rows:int -> cols:int -> t
(** Rectangular grid with nearest-neighbour coupling. *)

val of_edges : name:string -> num_qubits:int -> (int * int) list -> t
(** Arbitrary connected coupling graph. Raises [Invalid_argument] on
    out-of-range endpoints, self-loops, or a disconnected graph. *)

val ring : int -> t
(** Cycle of [n ≥ 3] qubits. *)

val torus : rows:int -> cols:int -> t
(** Grid with wrap-around links in both dimensions (min dimension 3). *)

val fully_connected : int -> t
(** All-to-all coupling — an idealized trapped-ion machine. *)

val is_grid : t -> bool

val rows : t -> int
(** Raises [Invalid_argument] on non-grid topologies. *)

val cols : t -> int

val num_qubits : t -> int

val coords : t -> int -> int * int
(** [coords t h] is [(x, y)] = (column, row). Raises [Invalid_argument]
    when [h] is out of range or the topology is not a grid. *)

val index : t -> x:int -> y:int -> int
(** Inverse of [coords]; grids only. *)

val adjacent : t -> int -> int -> bool
(** Whether a hardware CNOT between the two qubits is permitted. *)

val neighbors : t -> int -> int list
(** Coupled qubits, ascending. *)

val edges : t -> (int * int) list
(** All coupling edges, smaller endpoint first, sorted. *)

val distance : t -> int -> int -> int
(** Coupling-graph hop distance (Manhattan ‖h1 − h2‖₁ on grids, §4.2). *)

val degree : t -> int -> int

val pp : Format.formatter -> t -> unit
