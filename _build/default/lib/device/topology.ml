type t =
  | Grid of { rows : int; cols : int }
  | Graph of { name : string; adj : int list array; dist : int array array }

let grid ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.grid: bad dimensions";
  Grid { rows; cols }

(* All-pairs hop distances by BFS from every node. *)
let all_pairs_bfs adj =
  let n = Array.length adj in
  let dist = Array.make_matrix n n max_int in
  for src = 0 to n - 1 do
    let d = dist.(src) in
    d.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if d.(v) = max_int then begin
            d.(v) <- d.(u) + 1;
            Queue.add v queue
          end)
        adj.(u)
    done
  done;
  dist

let of_edges ~name ~num_qubits edges =
  if num_qubits <= 0 then invalid_arg "Topology.of_edges: need qubits";
  let adj = Array.make num_qubits [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || b < 0 || a >= num_qubits || b >= num_qubits then
        invalid_arg "Topology.of_edges: endpoint out of range";
      if a = b then invalid_arg "Topology.of_edges: self-loop";
      if not (List.mem b adj.(a)) then begin
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b)
      end)
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  let dist = all_pairs_bfs adj in
  Array.iter
    (Array.iter (fun d ->
         if d = max_int then invalid_arg "Topology.of_edges: graph not connected"))
    dist;
  Graph { name; adj; dist }

let ring n =
  if n < 3 then invalid_arg "Topology.ring: need >= 3 qubits";
  of_edges ~name:(Printf.sprintf "ring-%d" n) ~num_qubits:n
    (List.init n (fun i -> (i, (i + 1) mod n)))

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Topology.torus: dimensions >= 3";
  let idx x y = (y * cols) + x in
  let edges = ref [] in
  for y = 0 to rows - 1 do
    for x = 0 to cols - 1 do
      edges := (idx x y, idx ((x + 1) mod cols) y) :: !edges;
      edges := (idx x y, idx x ((y + 1) mod rows)) :: !edges
    done
  done;
  of_edges ~name:(Printf.sprintf "torus-%dx%d" rows cols)
    ~num_qubits:(rows * cols) !edges

let fully_connected n =
  if n < 2 then invalid_arg "Topology.fully_connected: need >= 2 qubits";
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  of_edges ~name:(Printf.sprintf "full-%d" n) ~num_qubits:n !edges

let is_grid = function Grid _ -> true | Graph _ -> false

let rows = function
  | Grid { rows; _ } -> rows
  | Graph _ -> invalid_arg "Topology.rows: not a grid"

let cols = function
  | Grid { cols; _ } -> cols
  | Graph _ -> invalid_arg "Topology.cols: not a grid"

let num_qubits = function
  | Grid { rows; cols } -> rows * cols
  | Graph { adj; _ } -> Array.length adj

let check t h =
  if h < 0 || h >= num_qubits t then
    invalid_arg (Printf.sprintf "Topology: qubit %d out of range" h)

let coords t h =
  check t h;
  match t with
  | Grid { cols; _ } -> (h mod cols, h / cols)
  | Graph _ -> invalid_arg "Topology.coords: not a grid"

let index t ~x ~y =
  match t with
  | Grid { rows; cols } ->
      if x < 0 || x >= cols || y < 0 || y >= rows then
        invalid_arg "Topology.index: coordinates out of range";
      (y * cols) + x
  | Graph _ -> invalid_arg "Topology.index: not a grid"

let distance t h1 h2 =
  check t h1;
  check t h2;
  match t with
  | Grid _ ->
      let x1, y1 = coords t h1 and x2, y2 = coords t h2 in
      abs (x1 - x2) + abs (y1 - y2)
  | Graph { dist; _ } -> dist.(h1).(h2)

let adjacent t h1 h2 = h1 <> h2 && distance t h1 h2 = 1

let neighbors t h =
  check t h;
  match t with
  | Grid { rows; cols } ->
      let x = h mod cols and y = h / cols in
      List.filter_map
        (fun (dx, dy) ->
          let x' = x + dx and y' = y + dy in
          if x' >= 0 && x' < cols && y' >= 0 && y' < rows then
            Some ((y' * cols) + x')
          else None)
        [ (0, -1); (-1, 0); (1, 0); (0, 1) ]
      |> List.sort compare
  | Graph { adj; _ } -> adj.(h)

let edges t =
  let out = ref [] in
  for h = num_qubits t - 1 downto 0 do
    List.iter (fun n -> if n > h then out := (h, n) :: !out) (neighbors t h)
  done;
  List.sort compare !out

let degree t h = List.length (neighbors t h)

let pp ppf t =
  match t with
  | Grid { rows; cols } ->
      Format.fprintf ppf "grid %dx%d (%d qubits, %d edges)" rows cols
        (num_qubits t)
        (List.length (edges t))
  | Graph { name; _ } ->
      Format.fprintf ppf "%s (%d qubits, %d edges)" name (num_qubits t)
        (List.length (edges t))
