module Gate = Nisq_circuit.Gate
module Calibration = Nisq_device.Calibration
module Rng = Nisq_util.Rng

type op = { kind : Gate.kind; qubits : int array; start : int; duration : int }

type site =
  | Dephase of { local : int; prob : float }  (* Z with prob before the op *)
  | Damp of { local : int; prob : float }
      (* amplitude-damping jump attempt before the op: when fired, the
         qubit decays |1> -> |0> with its current excited-state
         probability (the no-jump backaction is neglected; see mli) *)
  | Fault1 of { local : int; prob : float }  (* random Pauli after a 1q gate *)
  | Fault2 of { l0 : int; l1 : int; prob : float }  (* 2q Pauli after a CNOT *)

type prepared_op = {
  kind : Gate.kind;
  locals : int array;  (* operands as local (compacted) indices *)
  sites : site array;  (* dephase sites then the fault site, in order *)
  readout_flip : float;  (* measure ops only *)
  answer_bit : int;  (* measure ops only: bit position in the answer *)
}

type t = {
  num_local : int;
  ops : prepared_op array;
  ideal : int;
  ideal_prob : float;
  (* cumulative distribution over answers for the no-fault shortcut *)
  answer_values : int array;
  answer_cumulative : float array;
}

let dephase_prob calib ~hw ~gap_slots =
  if gap_slots <= 0 then 0.0
  else
    let t2_ns = calib.Calibration.t2_us.(hw) *. 1000.0 in
    let gap_ns = Float.of_int gap_slots *. Calibration.timeslot_ns in
    0.5 *. (1.0 -. exp (-.gap_ns /. t2_ns))

let damp_prob calib ~hw ~gap_slots =
  if gap_slots <= 0 then 0.0
  else
    let t1_ns = calib.Calibration.t1_us.(hw) *. 1000.0 in
    let gap_ns = Float.of_int gap_slots *. Calibration.timeslot_ns in
    1.0 -. exp (-.gap_ns /. t1_ns)

(* Run the unitary part noiselessly (measurements deferred) and return the
   final state. *)
let noiseless_final_state num_local (ops : prepared_op array) =
  let st = State.create num_local in
  Array.iter
    (fun op ->
      match op.kind with
      | Gate.Measure | Gate.Barrier -> ()
      | k -> State.apply_gate st k op.locals)
    ops;
  st

let prepare ~calib ~ops ~readout =
  (* Validate time-ordering. *)
  let () =
    let last = ref min_int in
    Array.iter
      (fun o ->
        if o.start < !last then invalid_arg "Runner.prepare: ops not time-ordered";
        last := o.start)
      ops
  in
  (* Compact hardware qubits to local indices. *)
  let local_of = Hashtbl.create 16 in
  let next = ref 0 in
  let local hw =
    match Hashtbl.find_opt local_of hw with
    | Some l -> l
    | None ->
        let l = !next in
        Hashtbl.add local_of hw l;
        incr next;
        l
  in
  Array.iter (fun o -> Array.iter (fun q -> ignore (local q)) o.qubits) ops;
  List.iter (fun (_, hw) -> ignore (local hw)) readout;
  let num_local = !next in
  if num_local > 24 then invalid_arg "Runner.prepare: too many active qubits";
  (* Answer-bit positions: ascending program qubit order. *)
  let sorted_readout = List.sort compare readout in
  let bit_of_hw = Hashtbl.create 8 in
  List.iteri (fun i (_, hw) -> Hashtbl.add bit_of_hw hw i) sorted_readout;
  (* Build prepared ops with noise sites. *)
  let last_time = Array.make num_local 0 in
  let measured = Array.make num_local false in
  let prepared =
    Array.map
      (fun o ->
        let locals = Array.map local o.qubits in
        Array.iter
          (fun l ->
            if measured.(l) then
              invalid_arg "Runner.prepare: op touches an already-measured qubit")
          locals;
        let dephase =
          Array.to_list
            (Array.mapi
               (fun idx l ->
                 let hw = o.qubits.(idx) in
                 let gap_slots = o.start - last_time.(l) in
                 [
                   Dephase { local = l; prob = dephase_prob calib ~hw ~gap_slots };
                   Damp { local = l; prob = damp_prob calib ~hw ~gap_slots };
                 ])
               locals)
          |> List.concat
        in
        Array.iter (fun l -> last_time.(l) <- o.start + o.duration) locals;
        let fault =
          match o.kind with
          | Gate.Cnot ->
              [ Fault2
                  {
                    l0 = locals.(0);
                    l1 = locals.(1);
                    prob = Calibration.cnot_error calib o.qubits.(0) o.qubits.(1);
                  } ]
          | Gate.Measure | Gate.Barrier -> []
          | Gate.Swap -> invalid_arg "Runner.prepare: lower Swap gates first"
          | _ ->
              [ Fault1
                  {
                    local = locals.(0);
                    prob = calib.Calibration.single_error.(o.qubits.(0));
                  } ]
        in
        let readout_flip, answer_bit =
          match o.kind with
          | Gate.Measure ->
              measured.(locals.(0)) <- true;
              let hw = o.qubits.(0) in
              let bit =
                match Hashtbl.find_opt bit_of_hw hw with
                | Some b -> b
                | None ->
                    invalid_arg
                      "Runner.prepare: measured qubit absent from readout map"
              in
              (Calibration.readout_error calib hw, bit)
          | _ -> (0.0, -1)
        in
        {
          kind = o.kind;
          locals;
          sites = Array.of_list (dephase @ fault);
          readout_flip;
          answer_bit;
        })
      ops
  in
  let num_measures =
    Array.fold_left
      (fun acc o -> if o.kind = Gate.Measure then acc + 1 else acc)
      0 prepared
  in
  if num_measures <> List.length readout then
    invalid_arg "Runner.prepare: measure count does not match readout map";
  (* Ideal answer distribution from the noiseless final state. *)
  let final = noiseless_final_state num_local prepared in
  let probs = State.probabilities final in
  let answer_of_basis =
    (* map a basis index to the packed answer using measured locals *)
    let pairs =
      List.map (fun (_, hw) -> Hashtbl.find local_of hw) sorted_readout
    in
    fun basis ->
      List.fold_left
        (fun (acc, bit) l ->
          ((if basis land (1 lsl l) <> 0 then acc lor (1 lsl bit) else acc), bit + 1))
        (0, 0) pairs
      |> fst
  in
  let answer_probs = Hashtbl.create 16 in
  Array.iteri
    (fun basis p ->
      if p > 0.0 then begin
        let a = answer_of_basis basis in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt answer_probs a) in
        Hashtbl.replace answer_probs a (prev +. p)
      end)
    probs;
  let pairs =
    Hashtbl.fold (fun a p acc -> (a, p) :: acc) answer_probs []
    |> List.sort compare
  in
  let ideal, ideal_prob =
    List.fold_left
      (fun (ba, bp) (a, p) -> if p > bp then (a, p) else (ba, bp))
      (-1, neg_infinity) pairs
  in
  let answer_values = Array.of_list (List.map fst pairs) in
  let answer_cumulative =
    let acc = ref 0.0 in
    Array.of_list
      (List.map
         (fun (_, p) ->
           acc := !acc +. p;
           !acc)
         pairs)
  in
  { num_local; ops = prepared; ideal; ideal_prob; answer_values; answer_cumulative }

let num_active_qubits t = t.num_local

let ideal_answer t = t.ideal

let ideal_answer_probability t = t.ideal_prob

let ideal_distribution t =
  let n = Array.length t.answer_values in
  List.init n (fun i ->
      let p =
        if i = 0 then t.answer_cumulative.(0)
        else t.answer_cumulative.(i) -. t.answer_cumulative.(i - 1)
      in
      (t.answer_values.(i), p))

let sample_ideal t rng =
  let u = Rng.float rng 1.0 in
  let n = Array.length t.answer_cumulative in
  let rec find i =
    if i >= n - 1 then t.answer_values.(n - 1)
    else if u < t.answer_cumulative.(i) then t.answer_values.(i)
    else find (i + 1)
  in
  find 0

let random_pauli rng = match Rng.int rng 3 with 0 -> `X | 1 -> `Y | _ -> `Z

(* A uniform non-identity two-qubit Pauli: pick one of the 15 non-II
   combinations of {I,X,Y,Z}^2. *)
let apply_random_pauli2 st rng l0 l1 =
  let k = 1 + Rng.int rng 15 in
  let p0 = k land 3 and p1 = (k lsr 2) land 3 in
  let apply l = function
    | 1 -> State.apply_pauli st `X l
    | 2 -> State.apply_pauli st `Y l
    | 3 -> State.apply_pauli st `Z l
    | _ -> ()
  in
  apply l0 p0;
  apply l1 p1

(* Decide which noise sites fire this trial. Returns None when the trial
   is fault-free (the common case), so the caller can use the precomputed
   ideal distribution instead of simulating. *)
let sample_faults t rng =
  let fired = ref [] in
  Array.iteri
    (fun op_idx op ->
      Array.iteri
        (fun site_idx site ->
          let prob =
            match site with
            | Dephase { prob; _ } | Damp { prob; _ } | Fault1 { prob; _ }
            | Fault2 { prob; _ } -> prob
          in
          if prob > 0.0 && Rng.float rng 1.0 < prob then
            fired := (op_idx, site_idx) :: !fired)
        op.sites)
    t.ops;
  match !fired with [] -> None | l -> Some l

let run_noisy t rng fired =
  let fired_tbl = Hashtbl.create 8 in
  List.iter (fun key -> Hashtbl.add fired_tbl key ()) fired;
  let st = State.create t.num_local in
  let answer = ref 0 in
  Array.iteri
    (fun op_idx op ->
      (* dephasing (and gate faults, below) keyed by fired sites *)
      Array.iteri
        (fun site_idx site ->
          match site with
          | Dephase { local; _ } when Hashtbl.mem fired_tbl (op_idx, site_idx) ->
              State.apply_pauli st `Z local
          | Damp { local; _ } when Hashtbl.mem fired_tbl (op_idx, site_idx) ->
              (* amplitude-damping jump: decay |1> -> |0> with the
                 current excited-state probability *)
              let p1 = State.prob_one st local in
              if p1 > 1e-12 && Rng.float rng 1.0 < p1 then begin
                State.collapse st local true;
                State.apply_pauli st `X local
              end
          | Dephase _ | Damp _ | Fault1 _ | Fault2 _ -> ())
        op.sites;
      (match op.kind with
      | Gate.Barrier -> ()
      | Gate.Measure ->
          let bit = State.measure st rng op.locals.(0) in
          let bit = if Rng.float rng 1.0 < op.readout_flip then not bit else bit in
          if bit then answer := !answer lor (1 lsl op.answer_bit)
      | k -> State.apply_gate st k op.locals);
      Array.iteri
        (fun site_idx site ->
          if Hashtbl.mem fired_tbl (op_idx, site_idx) then
            match site with
            | Fault1 { local; _ } -> State.apply_pauli st (random_pauli rng) local
            | Fault2 { l0; l1; _ } -> apply_random_pauli2 st rng l0 l1
            | Dephase _ | Damp _ -> ())
        op.sites)
    t.ops;
  !answer

let readout_flips t rng answer =
  Array.fold_left
    (fun acc op ->
      if op.kind = Gate.Measure && Rng.float rng 1.0 < op.readout_flip then
        acc lxor (1 lsl op.answer_bit)
      else acc)
    answer t.ops

let run_trial t rng =
  match sample_faults t rng with
  | None ->
      (* Fault-free trial: the quantum part is exact, only sampling and
         classical readout noise remain. *)
      readout_flips t rng (sample_ideal t rng)
  | Some fired -> run_noisy t rng fired

let success_rate ?(trials = 4096) ~seed t =
  if trials <= 0 then invalid_arg "Runner.success_rate: trials must be positive";
  let rng = Rng.create seed in
  let hits = ref 0 in
  for _ = 1 to trials do
    if run_trial t rng = t.ideal then incr hits
  done;
  Float.of_int !hits /. Float.of_int trials

let distribution ?(trials = 4096) ~seed t =
  let rng = Rng.create seed in
  let counts = Hashtbl.create 32 in
  for _ = 1 to trials do
    let a = run_trial t rng in
    Hashtbl.replace counts a (1 + Option.value ~default:0 (Hashtbl.find_opt counts a))
  done;
  Hashtbl.fold (fun a c acc -> (a, c) :: acc) counts []
  |> List.sort (fun (_, c1) (_, c2) -> compare c2 c1)
