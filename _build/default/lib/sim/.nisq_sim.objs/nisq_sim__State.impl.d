lib/sim/state.ml: Array Nisq_circuit Nisq_util
