lib/sim/runner.mli: Nisq_circuit Nisq_device Nisq_util
