lib/sim/runner.ml: Array Float Hashtbl List Nisq_circuit Nisq_device Nisq_util Option State
