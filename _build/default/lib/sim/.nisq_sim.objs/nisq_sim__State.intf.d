lib/sim/state.mli: Nisq_circuit Nisq_util
