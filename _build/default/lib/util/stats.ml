let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let log_sum =
    Array.fold_left (fun acc x -> acc +. log (Float.max x 1e-12)) 0.0 xs
  in
  exp (log_sum /. Float.of_int (Array.length xs))

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. Float.of_int (Array.length xs)
  in
  sqrt var

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median xs =
  check_nonempty "Stats.median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let rank = int_of_float (ceil (p /. 100.0 *. Float.of_int n)) in
  ys.(Int.max 0 (Int.min (n - 1) (rank - 1)))

let ratio_summary ~num ~den =
  if Array.length num <> Array.length den then
    invalid_arg "Stats.ratio_summary: length mismatch";
  let ratios =
    Array.init (Array.length num) (fun i -> num.(i) /. Float.max den.(i) 1e-12)
  in
  let _, hi = min_max ratios in
  (geomean ratios, hi)
