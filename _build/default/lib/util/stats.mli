(** Small statistics helpers used by experiments and reports. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on empty input. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values. Zero entries are clamped to
    [1e-12] so a single total failure does not collapse a ratio summary to
    zero (the paper reports geomean success-rate improvements). *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float

val median : float array -> float
(** Median (does not mutate its argument). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank. *)

val ratio_summary : num:float array -> den:float array -> float * float
(** [ratio_summary ~num ~den] is [(geomean ratios, max ratio)] of pointwise
    [num.(i) /. den.(i)] — the "geomean (up to Nx)" presentation the paper
    uses for success-rate improvements. *)
