lib/util/table.mli:
