lib/util/rng.mli:
