lib/util/stats.mli:
