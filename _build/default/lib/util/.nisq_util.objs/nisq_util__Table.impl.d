lib/util/table.ml: Array Int List Printf String
