type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header ~rows () =
  let ncols =
    List.fold_left
      (fun acc row -> Int.max acc (List.length row))
      (List.length header)
      rows
  in
  let get_align c = match List.nth_opt align c with Some a -> a | None -> Left in
  let cell row c = match List.nth_opt row c with Some s -> s | None -> "" in
  let widths =
    Array.init ncols (fun c ->
        List.fold_left
          (fun acc row -> Int.max acc (String.length (cell row c)))
          (String.length (cell header c))
          rows)
  in
  let line row =
    let cells =
      List.init ncols (fun c -> pad (get_align c) widths.(c) (cell row c))
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  "
      (List.init ncols (fun c -> String.make widths.(c) '-'))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let print ?align ~header ~rows () =
  print_string (render ?align ~header ~rows ())

let fmt_float ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
