module Circuit = Nisq_circuit.Circuit
module B = Circuit.Builder
module D = Nisq_circuit.Decompose

type t = {
  name : string;
  circuit : Circuit.t;
  expected : int;
  description : string;
}

let bernstein_vazirani_named name ~secret n =
  if n < 2 then invalid_arg "bernstein_vazirani: need >= 2 qubits";
  if secret < 0 || secret >= 1 lsl (n - 1) then
    invalid_arg "bernstein_vazirani: secret out of range";
  let b = B.create ~name n in
  let ancilla = n - 1 in
  (* |-> on the ancilla, |+> on the data *)
  B.x b ancilla;
  for q = 0 to n - 1 do
    B.h b q
  done;
  (* oracle f(x) = s.x: a CNOT from every data qubit with secret bit 1 *)
  for q = 0 to n - 2 do
    if secret land (1 lsl q) <> 0 then B.cnot b q ancilla
  done;
  for q = 0 to n - 2 do
    B.h b q
  done;
  for q = 0 to n - 2 do
    B.measure b q
  done;
  {
    name;
    circuit = B.build b;
    expected = secret;
    description = Printf.sprintf "Bernstein-Vazirani, hidden string %d" secret;
  }

let bernstein_vazirani n =
  bernstein_vazirani_named (Printf.sprintf "BV%d" n)
    ~secret:((1 lsl (n - 1)) - 1)
    n

let bernstein_vazirani_secret ~secret n =
  bernstein_vazirani_named (Printf.sprintf "BV%d-s%d" n secret) ~secret n

let hidden_shift_named name ~shift n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "hidden_shift: need even n >= 2";
  if shift < 0 || shift >= 1 lsl n then
    invalid_arg "hidden_shift: shift out of range";
  let b = B.create ~name n in
  let oracle () =
    (* Maiorana-McFarland bent function f(x) = x0 x1 + x2 x3 + ... as CZs *)
    let rec go q = if q + 1 < n then (D.emit_cz b q (q + 1); go (q + 2)) in
    go 0
  in
  let apply_shift () =
    for q = 0 to n - 1 do
      if shift land (1 lsl q) <> 0 then B.x b q
    done
  in
  for q = 0 to n - 1 do B.h b q done;
  apply_shift ();
  oracle ();
  apply_shift ();
  for q = 0 to n - 1 do B.h b q done;
  oracle ();
  for q = 0 to n - 1 do B.h b q done;
  B.measure_all b;
  {
    name;
    circuit = B.build b;
    expected = shift;
    description =
      Printf.sprintf "Hidden shift for a bent function, shift %d" shift;
  }

let hidden_shift n =
  hidden_shift_named (Printf.sprintf "HS%d" n) ~shift:((1 lsl n) - 1) n

let hidden_shift_with ~shift n =
  hidden_shift_named (Printf.sprintf "HS%d-s%d" n shift) ~shift n

(* Controlled phase by angle a, decomposed into Rz and 2 CNOTs. *)
let emit_cphase b a c t =
  B.rz b (a /. 2.0) c;
  B.cnot b c t;
  B.rz b (-.a /. 2.0) t;
  B.cnot b c t;
  B.rz b (a /. 2.0) t

let emit_qft b n =
  for q = n - 1 downto 0 do
    B.h b q;
    for j = q - 1 downto 0 do
      emit_cphase b (Float.pi /. Float.of_int (1 lsl (q - j))) j q
    done
  done

let emit_qft_inverse b n =
  for q = 0 to n - 1 do
    for j = 0 to q - 1 do
      emit_cphase b (-.Float.pi /. Float.of_int (1 lsl (q - j))) j q
    done;
    B.h b q
  done

let qft n =
  if n < 2 then invalid_arg "qft: need >= 2 qubits";
  let b = B.create ~name:(Printf.sprintf "QFT%d" n) n in
  B.x b 0;
  emit_qft b n;
  emit_qft_inverse b n;
  B.measure_all b;
  {
    name = Printf.sprintf "QFT%d" n;
    circuit = B.build b;
    expected = 1;
    description = "QFT followed by its inverse on |0..01>";
  }

let toffoli =
  let b = B.create ~name:"Toffoli" 3 in
  B.x b 0;
  B.x b 1;
  D.emit_toffoli b 0 1 2;
  B.measure_all b;
  {
    name = "Toffoli";
    circuit = B.build b;
    expected = 0b111;
    description = "Toffoli gate on |110>";
  }

let fredkin =
  let b = B.create ~name:"Fredkin" 3 in
  B.x b 0;
  B.x b 1;
  D.emit_fredkin b 0 1 2;
  B.measure_all b;
  {
    name = "Fredkin";
    circuit = B.build b;
    expected = 0b101;
    description = "Controlled-SWAP on |1;10>";
  }

let or_gate =
  let b = B.create ~name:"Or" 3 in
  B.x b 0;
  (* c = a OR b by De Morgan: c = NOT (NOT a AND NOT b) *)
  B.x b 0;
  B.x b 1;
  D.emit_toffoli b 0 1 2;
  B.x b 0;
  B.x b 1;
  B.x b 2;
  B.measure_all b;
  {
    name = "Or";
    circuit = B.build b;
    expected = 0b101;
    description = "OR(a=1, b=0) = 1";
  }

let peres =
  let b = B.create ~name:"Peres" 3 in
  B.x b 0;
  B.x b 1;
  D.emit_peres b 0 1 2;
  B.measure_all b;
  {
    name = "Peres";
    circuit = B.build b;
    expected = 0b101;
    description = "Peres gate on |110>: (a, a xor b, c xor ab)";
  }

let adder =
  let b = B.create ~name:"Adder" 4 in
  (* qubits: a, b, cin, cout; compute 1 + 1 + 0 *)
  B.x b 0;
  B.x b 1;
  D.emit_toffoli b 0 1 3;
  B.cnot b 0 1;
  D.emit_toffoli b 1 2 3;
  B.cnot b 1 2;
  B.cnot b 0 1;
  B.measure_all b;
  {
    name = "Adder";
    circuit = B.build b;
    (* a=1, b restored to 1, sum(q2)=0, cout(q3)=1 *)
    expected = 0b1011;
    description = "1-bit full adder: 1+1+0 -> sum 0, carry 1";
  }

let deutsch_jozsa n =
  if n < 2 then invalid_arg "deutsch_jozsa: need >= 2 qubits";
  let b = B.create ~name:(Printf.sprintf "DJ%d" n) n in
  let ancilla = n - 1 in
  B.x b ancilla;
  for q = 0 to n - 1 do
    B.h b q
  done;
  (* balanced oracle f(x) = x0: phase kickback through one CNOT *)
  B.cnot b 0 ancilla;
  for q = 0 to n - 2 do
    B.h b q
  done;
  for q = 0 to n - 2 do
    B.measure b q
  done;
  {
    name = Printf.sprintf "DJ%d" n;
    circuit = B.build b;
    expected = 1;
    (* balanced -> non-zero measurement, here exactly 0..01 *)
    description = "Deutsch-Jozsa with the balanced oracle f(x) = x0";
  }

let grover2 =
  let b = B.create ~name:"Grover2" 2 in
  (* superposition *)
  B.h b 0;
  B.h b 1;
  (* oracle marking |11>: CZ *)
  D.emit_cz b 0 1;
  (* diffusion: H X (CZ) X H *)
  B.h b 0;
  B.h b 1;
  B.x b 0;
  B.x b 1;
  D.emit_cz b 0 1;
  B.x b 0;
  B.x b 1;
  B.h b 0;
  B.h b 1;
  B.measure_all b;
  {
    name = "Grover2";
    circuit = B.build b;
    expected = 0b11;
    description = "Two-qubit Grover search: one iteration finds |11> exactly";
  }

let all =
  [
    bernstein_vazirani 4;
    bernstein_vazirani 6;
    bernstein_vazirani 8;
    hidden_shift 2;
    hidden_shift 4;
    hidden_shift 6;
    toffoli;
    fredkin;
    or_gate;
    peres;
    qft 2;
    adder;
  ]

let extended =
  all
  @ [
      deutsch_jozsa 4;
      deutsch_jozsa 6;
      grover2;
      bernstein_vazirani_secret ~secret:0b101 4;
      bernstein_vazirani_secret ~secret:0b01010 6;
      hidden_shift_with ~shift:0b0110 4;
      hidden_shift_with ~shift:0b101001 6;
    ]

let by_name name =
  let target = String.lowercase_ascii name in
  match
    List.find_opt (fun b -> String.lowercase_ascii b.name = target) extended
  with
  | Some b -> b
  | None -> raise Not_found

let characteristics b =
  ( b.name,
    b.circuit.Circuit.num_qubits,
    Circuit.gate_count b.circuit,
    Circuit.cnot_count b.circuit )
