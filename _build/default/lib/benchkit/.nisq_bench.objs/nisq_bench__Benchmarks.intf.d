lib/benchkit/benchmarks.mli: Nisq_circuit
