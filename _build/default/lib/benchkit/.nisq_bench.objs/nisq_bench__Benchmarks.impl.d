lib/benchkit/benchmarks.ml: Float List Nisq_circuit Printf String
