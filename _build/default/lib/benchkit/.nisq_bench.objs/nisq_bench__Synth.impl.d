lib/benchkit/synth.ml: Nisq_circuit Nisq_device Nisq_util Printf
