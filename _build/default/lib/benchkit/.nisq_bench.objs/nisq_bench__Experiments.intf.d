lib/benchkit/experiments.mli: Benchmarks Nisq_compiler Nisq_device Nisq_sim
