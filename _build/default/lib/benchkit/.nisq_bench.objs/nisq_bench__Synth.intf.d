lib/benchkit/synth.mli: Nisq_circuit Nisq_device
