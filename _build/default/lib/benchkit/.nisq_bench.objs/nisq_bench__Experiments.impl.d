lib/benchkit/experiments.ml: Array Benchmarks Buffer Float List Nisq_circuit Nisq_compiler Nisq_device Nisq_sim Nisq_solver Nisq_util Option Printf String Synth
