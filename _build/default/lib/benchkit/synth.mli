(** Synthetic workload generation (§6).

    Random circuits with a chosen qubit and gate count, gates sampled
    uniformly from the universal set {H, X, Y, Z, S, T, CNOT} — the
    paper's scalability benchmark (4–128 qubits, 128–2048 gates,
    Fig. 11). *)

val random_circuit :
  ?measure:bool -> qubits:int -> gates:int -> seed:int -> unit ->
  Nisq_circuit.Circuit.t
(** [measure] (default true) appends a full readout. [gates] counts the
    sampled gates, excluding the readout. *)

val grid_for : qubits:int -> Nisq_device.Topology.t
(** The smallest standard grid (2×8, 4×8, 8×8, 8×16) with at least
    [qubits] locations. Raises [Invalid_argument] above 128. *)
