module B = Nisq_circuit.Circuit.Builder
module Gate = Nisq_circuit.Gate
module Rng = Nisq_util.Rng

let random_circuit ?(measure = true) ~qubits ~gates ~seed () =
  if qubits < 2 then invalid_arg "Synth.random_circuit: need >= 2 qubits";
  if gates < 1 then invalid_arg "Synth.random_circuit: need >= 1 gates";
  let rng = Rng.create seed in
  let b =
    B.create ~name:(Printf.sprintf "rand-q%d-g%d-s%d" qubits gates seed) qubits
  in
  for _ = 1 to gates do
    match Rng.int rng 7 with
    | 0 -> B.h b (Rng.int rng qubits)
    | 1 -> B.x b (Rng.int rng qubits)
    | 2 -> B.y b (Rng.int rng qubits)
    | 3 -> B.z b (Rng.int rng qubits)
    | 4 -> B.s b (Rng.int rng qubits)
    | 5 -> B.t_gate b (Rng.int rng qubits)
    | _ ->
        let c = Rng.int rng qubits in
        let t = Rng.int rng (qubits - 1) in
        let t = if t >= c then t + 1 else t in
        B.cnot b c t
  done;
  if measure then B.measure_all b;
  B.build b

let grid_for ~qubits =
  let open Nisq_device.Topology in
  if qubits <= 16 then grid ~rows:2 ~cols:8
  else if qubits <= 32 then grid ~rows:4 ~cols:8
  else if qubits <= 64 then grid ~rows:8 ~cols:8
  else if qubits <= 128 then grid ~rows:8 ~cols:16
  else invalid_arg "Synth.grid_for: at most 128 qubits"
