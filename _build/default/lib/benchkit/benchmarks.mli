(** The 12 paper benchmarks (Table 2).

    Each benchmark is a circuit with a classically checkable answer: the
    noiseless execution yields one outcome with probability ≈ 1, so the
    measured success rate is the fraction of noisy trials returning that
    outcome (§6 "Metrics"). Gate counts differ slightly from Table 2
    where the paper used more aggressively optimized decompositions (see
    EXPERIMENTS.md); CNOT-graph shapes match.

    Answers are bit-packed: bit [i] is the measured value of the [i]-th
    measured program qubit in ascending qubit order. *)

type t = {
  name : string;
  circuit : Nisq_circuit.Circuit.t;
  expected : int;  (** the correct answer *)
  description : string;
}

val bernstein_vazirani : int -> t
(** [bernstein_vazirani n]: [n] qubits = [n−1] data + 1 ancilla, hidden
    string all-ones; expects answer [2^(n−1) − 1]. 3 CNOTs for BV4. *)

val hidden_shift : int -> t
(** [hidden_shift n] ([n] even): Maiorana–McFarland bent-function hidden
    shift with shift all-ones; [n] CNOTs; expects [2^n − 1]. *)

val qft : int -> t
(** [qft n]: prepares |0…01⟩, applies QFT then QFT†, measures; expects
    [1]. *)

val toffoli : t
(** |110⟩ → expects |111⟩. 6 CNOTs. *)

val fredkin : t
(** Controlled-SWAP of |1;10⟩ → expects |1;01⟩. 8 CNOTs. *)

val or_gate : t
(** OR(1,0) via De-Morgan Toffoli → expects c = 1. *)

val peres : t
(** Peres(1,1,0) → (1, 0, 1). *)

val adder : t
(** 1-bit full adder computing 1+1+0: sum 0, carry 1. *)

val bernstein_vazirani_secret : secret:int -> int -> t
(** BV with an arbitrary hidden string: [secret]'s bit [i] controls
    whether data qubit [i] enters the oracle. Expects [secret]. *)

val hidden_shift_with : shift:int -> int -> t
(** Hidden shift with an arbitrary shift pattern. Expects [shift]. *)

val deutsch_jozsa : int -> t
(** [deutsch_jozsa n]: [n−1] data qubits + ancilla, balanced oracle
    f(x) = x₀ ⊕ … — measuring the data yields a non-zero string
    (here 10…0); constant oracles would yield all-zeros. *)

val grover2 : t
(** Two-qubit Grover search for the marked state |11⟩: a single
    iteration finds it with certainty. Expects [0b11]. *)

val all : t list
(** BV4, BV6, BV8, HS2, HS4, HS6, Fredkin, Or, Peres, Toffoli, Adder,
    QFT2 — the Table 2 suite. *)

val extended : t list
(** [all] plus Deutsch–Jozsa (4, 6), Grover-2, and non-trivial-secret
    BV/HS instances — used by the wider regression tests and ablations. *)

val by_name : string -> t
(** Case-insensitive lookup. Raises [Not_found]. *)

val characteristics : t -> string * int * int * int
(** [(name, qubits, gates, cnots)] — the Table 2 row (CNOT count is over
    the decomposed circuit, SWAP-free programs). *)
