lib/compiler/reliability.mli: Config Emit Nisq_circuit Nisq_device Nisq_solver Route
