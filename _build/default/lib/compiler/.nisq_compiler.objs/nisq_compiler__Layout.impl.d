lib/compiler/layout.ml: Array Buffer Format Fun Nisq_circuit Nisq_device Printf String
