lib/compiler/schedule.mli: Format Nisq_circuit Nisq_device Route
