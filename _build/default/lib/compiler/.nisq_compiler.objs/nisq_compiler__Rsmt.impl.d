lib/compiler/rsmt.ml: Layout Nisq_device Nisq_solver Reliability
