lib/compiler/greedy.mli: Layout Nisq_circuit Nisq_device
