lib/compiler/emit.mli: Nisq_circuit Nisq_device Route Schedule
