lib/compiler/route.ml: Array Config Int Layout List Nisq_circuit Nisq_device
