lib/compiler/layout.mli: Format Nisq_circuit Nisq_device
