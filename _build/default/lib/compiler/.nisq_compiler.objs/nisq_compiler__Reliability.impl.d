lib/compiler/reliability.ml: Array Emit Float List Nisq_circuit Nisq_device Nisq_solver Route
