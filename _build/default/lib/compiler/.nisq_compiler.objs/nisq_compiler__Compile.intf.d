lib/compiler/compile.mli: Config Emit Layout Nisq_circuit Nisq_device Nisq_solver Route Schedule
