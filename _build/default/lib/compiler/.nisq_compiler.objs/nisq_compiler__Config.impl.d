lib/compiler/config.ml: Nisq_solver Printf
