lib/compiler/tsmt.ml: Array Fun Int Layout List Nisq_circuit Nisq_device Nisq_solver Route Schedule
