lib/compiler/config.mli: Nisq_solver
