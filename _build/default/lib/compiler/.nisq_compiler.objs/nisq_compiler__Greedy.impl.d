lib/compiler/greedy.ml: Array Float Fun Int Layout List Nisq_circuit Nisq_device Option
