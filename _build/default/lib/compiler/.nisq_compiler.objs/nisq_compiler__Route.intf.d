lib/compiler/route.mli: Config Layout Nisq_circuit Nisq_device
