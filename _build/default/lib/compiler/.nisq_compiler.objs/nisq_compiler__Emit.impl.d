lib/compiler/emit.ml: Array Fun List Nisq_circuit Nisq_device Route Schedule
