lib/compiler/rsmt.mli: Config Layout Nisq_circuit Nisq_device Nisq_solver
