lib/compiler/compile.ml: Array Config Emit Float Greedy Layout List Nisq_circuit Nisq_device Nisq_solver Reliability Route Rsmt Schedule Tsmt Unix
