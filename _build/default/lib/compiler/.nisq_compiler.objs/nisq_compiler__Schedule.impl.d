lib/compiler/schedule.ml: Array Format Int List Nisq_circuit Nisq_device Option Printf Route String
