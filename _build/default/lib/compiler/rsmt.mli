(** Reliability-optimal placement — R-SMT⋆ (§4.4–4.5).

    Maximizes the weighted log-reliability objective of Eq. 12 over
    injective placements, with routed-CNOT reliabilities taken from the
    one-bend-path EC matrix (or the policy in force). The returned layout
    is model-optimal whenever the solver proves optimality within
    budget. *)

val compile_layout :
  decision_paths:Nisq_device.Paths.t ->
  omega:float ->
  policy:Config.routing ->
  budget:Nisq_solver.Budget.t ->
  Nisq_circuit.Circuit.t ->
  Layout.t * Nisq_solver.Budget.stats * float
(** [(layout, solver stats, objective value)]. *)
