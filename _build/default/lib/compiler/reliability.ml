module Circuit = Nisq_circuit.Circuit
module Gate = Nisq_circuit.Gate
module Calibration = Nisq_device.Calibration
module Topology = Nisq_device.Topology
module Paths = Nisq_device.Paths
module Placement = Nisq_solver.Placement

let placement_problem paths ~omega ~policy (circuit : Circuit.t) =
  let calib = Paths.calibration paths in
  let num_slots = Topology.num_qubits calib.Calibration.topology in
  let num_items = circuit.Circuit.num_qubits in
  (* Readout term: each measurement of program qubit p contributes
     omega * log(readout reliability of its location). *)
  let measure_count = Array.make num_items 0 in
  Array.iter
    (fun (g : Gate.t) ->
      if g.kind = Gate.Measure then
        measure_count.(g.qubits.(0)) <- measure_count.(g.qubits.(0)) + 1)
    circuit.Circuit.gates;
  let unary =
    Array.init num_items (fun p ->
        Array.init num_slots (fun h ->
            if measure_count.(p) = 0 then 0.0
            else
              omega
              *. Float.of_int measure_count.(p)
              *. log (Calibration.readout_reliability calib h)))
  in
  let ec = Route.log_reliability_matrix paths ~policy in
  let pairwise =
    Circuit.interaction_weights circuit
    |> List.map (fun ((a, b), w) ->
           let m =
             Array.init num_slots (fun ha ->
                 Array.init num_slots (fun hb ->
                     if ha = hb then neg_infinity
                     else (1.0 -. omega) *. Float.of_int w *. ec.(ha).(hb)))
           in
           (a, b, m))
  in
  { Placement.num_items; num_slots; unary; pairwise }

let plan_log_reliability calib ~omega (circuit : Circuit.t)
    (plans : Route.entry array) =
  let total = ref 0.0 in
  Array.iteri
    (fun i (g : Gate.t) ->
      let p = plans.(i) in
      match g.kind with
      | Gate.Measure ->
          total :=
            !total
            +. (omega *. log (Calibration.readout_reliability calib p.Route.hw.(0)))
      | Gate.Cnot -> (
          match p.Route.route with
          | Some r ->
              total := !total +. ((1.0 -. omega) *. r.Paths.log_reliability)
          | None -> assert false)
      | _ -> ())
    circuit.Circuit.gates;
  !total

let esp ?(include_single = true) calib (ops : Emit.phys array) =
  Array.fold_left
    (fun acc (op : Emit.phys) ->
      match op.Emit.kind with
      | Gate.Cnot ->
          acc *. Calibration.cnot_reliability calib op.qubits.(0) op.qubits.(1)
      | Gate.Measure -> acc *. Calibration.readout_reliability calib op.qubits.(0)
      | Gate.Barrier | Gate.Swap -> acc
      | Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
      | Gate.Tdg | Gate.Rz _ | Gate.Rx _ | Gate.Ry _ ->
          if include_single then
            acc *. (1.0 -. calib.Calibration.single_error.(op.qubits.(0)))
          else acc)
    1.0 ops
