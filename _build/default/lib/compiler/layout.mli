(** Program-qubit → hardware-qubit placements (Constraints 1–2).

    A layout is total on the program qubits and injective into the
    hardware qubits. *)

type t

val of_array : num_hw:int -> int array -> t
(** [of_array ~num_hw a] with [a.(p)] the hardware location of program
    qubit [p]. Raises [Invalid_argument] unless injective and in range. *)

val identity : num_prog:int -> num_hw:int -> t
(** Program qubit [p] → hardware qubit [p] — the Qiskit baseline's
    lexicographic placement. *)

val num_prog : t -> int
val num_hw : t -> int

val hw_of : t -> int -> int
(** Hardware location of a program qubit. *)

val prog_of : t -> int -> int option
(** Inverse: the program qubit living at a hardware location, if any. *)

val to_array : t -> int array

val apply : t -> Nisq_circuit.Circuit.t -> Nisq_circuit.Circuit.t
(** Re-express a program circuit over hardware qubits. *)

val render :
  Nisq_device.Topology.t -> ?calib:Nisq_device.Calibration.t -> t -> string
(** ASCII drawing of the device grid with program qubits marked — the
    presentation of Fig. 8. With [calib], nodes show readout error (%)
    and edges show CNOT error (%). *)

val pp : Format.formatter -> t -> unit
