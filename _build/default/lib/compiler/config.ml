type routing = Rectangle_reservation | One_bend | Best_path

type movement = Swap_back | Move_and_stay

type method_ =
  | Qiskit
  | T_smt
  | T_smt_star
  | R_smt_star of float
  | Greedy_v
  | Greedy_e

type t = {
  method_ : method_;
  routing : routing;
  movement : movement;
  budget : Nisq_solver.Budget.t;
}

let default_budget =
  Nisq_solver.Budget.make ~max_nodes:200_000 ~max_seconds:60.0 ()

let default_routing = function
  | Qiskit -> Best_path
  | T_smt | T_smt_star -> Rectangle_reservation
  | R_smt_star _ -> One_bend
  | Greedy_v | Greedy_e -> Best_path

let make ?routing ?(movement = Swap_back) ?(budget = default_budget) method_ =
  (match method_ with
  | R_smt_star w when w < 0.0 || w > 1.0 ->
      invalid_arg "Config.make: omega must lie in [0,1]"
  | _ -> ());
  let routing =
    match routing with Some r -> r | None -> default_routing method_
  in
  { method_; routing; movement; budget }

let uses_calibration t =
  match t.method_ with
  | Qiskit | T_smt -> false
  | T_smt_star | R_smt_star _ | Greedy_v | Greedy_e -> true

let routing_name = function
  | Rectangle_reservation -> "RR"
  | One_bend -> "1BP"
  | Best_path -> "BestPath"

let name t =
  let base =
    match t.method_ with
    | Qiskit -> "Qiskit"
    | T_smt -> "T-SMT"
    | T_smt_star -> "T-SMT*"
    | R_smt_star w -> Printf.sprintf "R-SMT* w=%.2f" w
    | Greedy_v -> "GreedyV*"
    | Greedy_e -> "GreedyE*"
  in
  let move = match t.movement with Swap_back -> "" | Move_and_stay -> "+move" in
  Printf.sprintf "%s (%s%s)" base (routing_name t.routing) move

let paper_suite =
  [
    make Qiskit;
    make T_smt;
    make T_smt_star;
    make (R_smt_star 0.0);
    make (R_smt_star 0.5);
    make (R_smt_star 1.0);
    make Greedy_v;
    make Greedy_e;
  ]
