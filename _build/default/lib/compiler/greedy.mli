(** Noise-aware greedy placement heuristics (§5).

    Both heuristics work on the program graph (nodes = qubits, edges =
    interacting pairs weighted by CNOT multiplicity) and score candidate
    locations with the most-reliable-path table of
    {!Nisq_device.Paths}. They run in O(V·H + E) placements over H
    hardware qubits — the scalable alternative to the SMT searches
    (Fig. 11). *)

val vertex_first :
  Nisq_device.Paths.t -> Nisq_circuit.Circuit.t -> Layout.t
(** GreedyV⋆ (§5.1): program qubits in descending CNOT-degree order; the
    heaviest qubit goes to the best-readout location among
    maximum-degree hardware qubits; each subsequent qubit (preferring
    those adjacent in the program graph to an already-placed qubit) goes
    to the free location maximizing the summed best-path
    log-reliability to its placed neighbours. *)

val edge_first : Nisq_device.Paths.t -> Nisq_circuit.Circuit.t -> Layout.t
(** GreedyE⋆ (§5.2): program-graph edges in descending weight order; the
    heaviest edge goes to the hardware edge maximizing combined CNOT and
    readout reliability; each subsequent edge with one placed endpoint
    places the other endpoint to maximize summed path reliability to its
    placed neighbours. *)
