module Topology = Nisq_device.Topology
module Calibration = Nisq_device.Calibration

type t = { prog_to_hw : int array; hw_to_prog : int array }

let of_array ~num_hw a =
  let hw_to_prog = Array.make num_hw (-1) in
  Array.iteri
    (fun p h ->
      if h < 0 || h >= num_hw then
        invalid_arg
          (Printf.sprintf "Layout.of_array: hw qubit %d out of range" h);
      if hw_to_prog.(h) >= 0 then
        invalid_arg
          (Printf.sprintf "Layout.of_array: hw qubit %d assigned twice" h);
      hw_to_prog.(h) <- p)
    a;
  { prog_to_hw = Array.copy a; hw_to_prog }

let identity ~num_prog ~num_hw =
  if num_prog > num_hw then invalid_arg "Layout.identity: too many program qubits";
  of_array ~num_hw (Array.init num_prog Fun.id)

let num_prog t = Array.length t.prog_to_hw
let num_hw t = Array.length t.hw_to_prog

let hw_of t p = t.prog_to_hw.(p)

let prog_of t h = if t.hw_to_prog.(h) >= 0 then Some t.hw_to_prog.(h) else None

let to_array t = Array.copy t.prog_to_hw

let apply t circuit =
  Nisq_circuit.Circuit.map_qubits circuit ~f:(fun p -> t.prog_to_hw.(p))
    ~num_qubits:(num_hw t)

let render_graph topo ?calib t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Format.asprintf "%a\n" Topology.pp topo);
  Array.iteri
    (fun p h ->
      let readout =
        match calib with
        | Some c ->
            Printf.sprintf " (readout err %.1f%%)"
              (100.0 *. Calibration.readout_error c h)
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  p%d -> q%d%s\n" p h readout))
    t.prog_to_hw;
  Buffer.contents buf

let render topo ?calib t =
  if not (Topology.is_grid topo) then render_graph topo ?calib t
  else
  let buf = Buffer.create 512 in
  let node h =
    let who =
      match prog_of t h with
      | Some p -> Printf.sprintf "p%-2d" p
      | None -> " . "
    in
    match calib with
    | Some c ->
        Printf.sprintf "[%s %4.1f]" who (100.0 *. Calibration.readout_error c h)
    | None -> Printf.sprintf "[%s q%-2d]" who h
  in
  let hedge h1 h2 =
    match calib with
    | Some c -> Printf.sprintf "-%4.1f-" (100.0 *. Calibration.cnot_error c h1 h2)
    | None -> "------"
  in
  let cell_width = String.length (node 0) in
  for y = 0 to Topology.rows topo - 1 do
    (* node row *)
    for x = 0 to Topology.cols topo - 1 do
      let h = Topology.index topo ~x ~y in
      Buffer.add_string buf (node h);
      if x < Topology.cols topo - 1 then
        Buffer.add_string buf (hedge h (Topology.index topo ~x:(x + 1) ~y))
    done;
    Buffer.add_char buf '\n';
    (* vertical edge row *)
    if y < Topology.rows topo - 1 then begin
      for x = 0 to Topology.cols topo - 1 do
        let h = Topology.index topo ~x ~y in
        let h' = Topology.index topo ~x ~y:(y + 1) in
        let label =
          match calib with
          | Some c -> Printf.sprintf "%4.1f" (100.0 *. Calibration.cnot_error c h h')
          | None -> " |  "
        in
        let pad = (cell_width - 4) / 2 in
        Buffer.add_string buf (String.make pad ' ');
        Buffer.add_string buf label;
        Buffer.add_string buf (String.make (cell_width - 4 - pad) ' ');
        if x < Topology.cols topo - 1 then
          Buffer.add_string buf (String.make 6 ' ')
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (Array.to_list
          (Array.mapi (fun p h -> Printf.sprintf "p%d->q%d" p h) t.prog_to_hw)))
