(** Routing policies and gate-level execution plans.

    Given a layout, every program gate is *planned*: assigned hardware
    operands, a duration in timeslots, a set of hardware qubits it
    reserves while executing, and — for CNOTs between non-adjacent
    locations — a movement route. The plan is what the scheduler consumes
    (the gate durations of Constraints 3–5 and the spatial-exclusion
    regions of Constraints 7–9) and what {!Emit} later expands into
    physical gates.

    Routing follows the static-placement model of §4.2: the control is
    SWAPped along the route until adjacent to the target, the CNOT
    executes, and the SWAPs are undone, so the layout is invariant across
    the whole program. *)

type criterion =
  | Min_hops  (** noise-blind shortest route (Qiskit baseline, T-SMT) *)
  | Min_duration  (** calibrated fastest route (T-SMT⋆) *)
  | Max_reliability  (** calibrated most-reliable route (R-SMT⋆, greedy) *)

type entry = {
  hw : int array;  (** hardware operands of the program gate *)
  duration : int;  (** timeslots, movement included for CNOTs *)
  reserve : int array;  (** hardware qubits blocked during execution *)
  route : Nisq_device.Paths.route option;  (** [Some] for every CNOT *)
}

val plan :
  Nisq_device.Paths.t ->
  policy:Config.routing ->
  criterion:criterion ->
  layout:Layout.t ->
  Nisq_circuit.Circuit.t ->
  entry array
(** One entry per program gate, indexed by gate id. The circuit must not
    contain [Swap] gates (lower them first). Under
    [Rectangle_reservation] a CNOT reserves its full bounding rectangle;
    under [One_bend] and [Best_path] it reserves the route qubits. *)

val reprice : Nisq_device.Paths.t -> entry array -> entry array
(** Recompute durations and route reliabilities against another
    calibration day, keeping the routing decisions fixed. Used to
    evaluate what actually happens when a calibration-blind plan (T-SMT,
    Qiskit) runs on the real machine. *)

val duration_matrix :
  Nisq_device.Paths.t ->
  policy:Config.routing ->
  criterion:criterion ->
  int array array
(** The ∆ matrix (§4.2): planned CNOT duration for every hardware qubit
    pair (diagonal 0). *)

val log_reliability_matrix :
  Nisq_device.Paths.t -> policy:Config.routing -> float array array
(** The per-pair best routed-CNOT log-reliability — the junction-maximized
    EC matrix (§4.4) used by the placement objective. Diagonal 0. *)

val expand_move_and_stay :
  Nisq_device.Paths.t ->
  policy:Config.routing ->
  criterion:criterion ->
  layout:Layout.t ->
  Nisq_circuit.Circuit.t ->
  Nisq_circuit.Circuit.t * int array
(** Dynamic-routing expansion ([Config.Move_and_stay]): SWAPs move state
    permanently, the layout drifts. Returns the routed hardware circuit
    (all two-qubit gates between coupled qubits; SWAPs explicit) and the
    final hardware position of every program qubit. Under this model
    [plan] is then run on the routed circuit with an identity layout. *)

val swap_count : entry array -> int
(** Total SWAP operations the plan inserts (each distance-unit of
    movement costs 2: out and back). *)
