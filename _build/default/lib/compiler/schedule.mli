(** Gate scheduling.

    An earliest-ready-gate-first list scheduler (the policy of [27] the
    paper adopts for its heuristics, §5) that also realizes the SMT
    formulation's constraints for all variants:

    - data dependencies: a gate starts only after its DAG predecessors
      finish (Constraint 3);
    - spatial exclusion: two operations whose reserve sets intersect may
      not overlap in time — rectangle reservation or path reservation
      depending on the plan (Constraints 7–9);
    - coherence: {!coherence_violations} reports gates finishing after
      the T2 window of a hardware qubit they use (Constraints 4/6). *)

type entry = {
  gate_id : int;
  start : int;  (** timeslot *)
  duration : int;
  hw : int array;
  reserve : int array;
}

type t = {
  entries : entry array;  (** indexed by gate id *)
  makespan : int;  (** finish time of the last gate *)
}

val compute :
  Nisq_circuit.Dag.t ->
  circuit:Nisq_circuit.Circuit.t ->
  Route.entry array ->
  t
(** Schedule every gate of the DAG according to its plan entry. *)

val coherence_violations :
  t -> Nisq_device.Calibration.t -> (int * int * int) list
(** [(gate_id, finish, t2_limit)] for every gate finishing after the
    minimum T2 window (in slots) of its hardware operands. Empty for
    every paper benchmark on IBMQ16 (§7.2). *)

val busy_slots : t -> int -> int
(** Total timeslots during which a hardware qubit is executing gates
    (reservations included) — used by the noise model to derive idle
    time. *)

val pp : Format.formatter -> t -> unit
