(** Duration-optimal placement — T-SMT and T-SMT⋆ (§4.5).

    Minimizes the finish time of the last gate subject to the mapping,
    dependency, duration, routing and coherence constraints, by
    branch-and-bound over placements with the dependency-graph critical
    path (under optimistic routing durations for unplaced endpoints) as
    the admissible lower bound and the list scheduler as the exact leaf
    cost. T-SMT runs this against the uniform machine view, T-SMT⋆
    against the day's calibration. *)

val compile_layout :
  decision_paths:Nisq_device.Paths.t ->
  policy:Config.routing ->
  criterion:Route.criterion ->
  budget:Nisq_solver.Budget.t ->
  Nisq_circuit.Circuit.t ->
  Nisq_circuit.Dag.t ->
  Layout.t * Nisq_solver.Budget.stats
(** A schedule violating the coherence window (Eq. 4/6) is penalized by
    [coherence_penalty] rather than rejected, so a best-effort layout is
    always produced. *)

val coherence_penalty : int
