(** Compiler configurations — the rows of Table 1.

    Each configuration fixes a mapping algorithm, a routing policy and an
    objective. The ⋆-variants consume daily calibration data; the plain
    variants see only the machine topology (via a uniform calibration
    view) and so compile the same program identically every day. *)

type routing =
  | Rectangle_reservation  (** RR (§4.3, Fig. 4a) *)
  | One_bend  (** 1BP (§4.3, Fig. 4b) *)
  | Best_path  (** most-reliable Dijkstra path — heuristics' policy (§5) *)

type movement =
  | Swap_back
      (** the paper's static-placement model (§4.2): SWAP the control to
          the target's neighbourhood, CNOT, SWAP back — the layout never
          changes *)
  | Move_and_stay
      (** extension: SWAPs permanently move qubit state (as in modern
          Qiskit routers); halves the movement cost of each routed CNOT
          at the price of a drifting layout. Benchmarked as an ablation
          (see bench/main.exe ablations). *)

type method_ =
  | Qiskit
      (** baseline: lexicographic placement, noise-unaware shortest-path
          routing — models the IBM Qiskit 0.5.7 default mapper *)
  | T_smt  (** optimal duration, static data only (Constraints 1–4, 7–9) *)
  | T_smt_star  (** optimal duration with calibrated gate times & T2 *)
  | R_smt_star of float
      (** optimal weighted log-reliability, argument is the readout weight
          ω ∈ [0,1] of Eq. 12 *)
  | Greedy_v  (** GreedyV⋆: greatest-vertex-degree-first (§5.1) *)
  | Greedy_e  (** GreedyE⋆: greatest-weighted-edge-first (§5.2) *)

type t = {
  method_ : method_;
  routing : routing;
  movement : movement;
  budget : Nisq_solver.Budget.t;  (** search budget for the SMT variants *)
}

val make :
  ?routing:routing ->
  ?movement:movement ->
  ?budget:Nisq_solver.Budget.t ->
  method_ ->
  t
(** [routing] defaults to the paper's choice for the method: 1BP for
    R-SMT⋆, RR for the T-SMT variants, Best-Path for the heuristics and
    the Qiskit baseline. [movement] defaults to [Swap_back] (the paper's
    model). The default budget caps SMT searches at 200k nodes / 60 s. *)

val uses_calibration : t -> bool
(** The ⋆ marker of Table 1. *)

val name : t -> string
(** e.g. ["R-SMT* w=0.50 (1BP)"]. *)

val routing_name : routing -> string

val paper_suite : t list
(** The configurations evaluated in §7: Qiskit, T-SMT, T-SMT⋆,
    R-SMT⋆(ω ∈ {0, 0.5, 1}), GreedyV⋆, GreedyE⋆. *)
