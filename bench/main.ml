(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the compile passes.

   Usage:
     main.exe                  run everything (figures + micro-benches)
     main.exe fig5 [trials]    one figure (table2, fig1, fig5..fig11)
     main.exe micro            only the Bechamel micro-benchmarks
     main.exe micro-compile [--out PATH]
                               only the compile fast-path benches; writes
                               a BENCH_compile.json baseline (default CWD)
     main.exe scale [--smoke] [--out PATH]
                               simulator weak/strong scaling sweep over
                               domains x qubits x trials; appends a dated
                               entry to BENCH_sim.json (default CWD)
     main.exe solver-par-check assert the parallel solver matches the
                               sequential one (objective parity, pool-size
                               determinism, seeding never adds nodes)
     main.exe quick            figures with reduced trial counts

   Crash-safe long runs (see DESIGN.md §8):
     --run-id ID       journal results under _runs/ID/ as they complete
     --resume ID       replay _runs/ID's journal, recompute only the rest
     --resume-force    resume even if the run identity does not match
     --deadline DUR    cancel cooperatively after DUR (e.g. 30s, 5m)
   SIGINT/SIGTERM checkpoint and exit 130/143; a blown deadline exits 3. *)

module E = Nisq_bench.Experiments
module Benchmarks = Nisq_bench.Benchmarks
module Synth = Nisq_bench.Synth
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Calib_gen = Nisq_device.Calib_gen
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner
module Atomic_io = Nisq_runkit.Atomic_io
module Deadline = Nisq_runkit.Deadline
module Run = Nisq_runkit.Run
module Signals = Nisq_runkit.Signals

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure compile path        *)
(* ------------------------------------------------------------------ *)

module Pool = Nisq_util.Pool
module Obs_metrics = Nisq_obs.Metrics
module Obs_trace = Nisq_obs.Trace
module Obs_json = Nisq_obs.Json

(* ------------------------------------------------------------------ *)
(* Per-figure telemetry capture                                        *)
(*                                                                     *)
(* Each figure run gets a fresh metrics registry + span store and      *)
(* leaves a machine-readable summary in _telemetry/<id>.telemetry.json *)
(* (override the directory with NISQ_TELEMETRY_DIR).                   *)
(* ------------------------------------------------------------------ *)

let telemetry_dir () =
  Option.value (Sys.getenv_opt "NISQ_TELEMETRY_DIR") ~default:"_telemetry"

(* The telemetry summary is written in a [Fun.protect] finaliser: a
   figure aborted by a deadline, a signal or any exception still
   disables the registries and flushes what it measured — partial
   telemetry from a cancelled run is exactly what you want to inspect.
   The dump itself goes through the atomic write path in [Json.to_file]. *)
let figure_telemetry name f =
  Obs_metrics.set_enabled true;
  Obs_trace.set_enabled true;
  Obs_metrics.reset ();
  Obs_trace.reset ();
  Fun.protect f ~finally:(fun () ->
      let doc =
        Obs_json.Obj
          [
            ("figure", Obs_json.String name);
            ("metrics", Obs_metrics.dump_json ());
            ("spans", Obs_trace.summary_json ());
          ]
      in
      Obs_metrics.set_enabled false;
      Obs_trace.set_enabled false;
      let dir = telemetry_dir () in
      Atomic_io.mkdir_p dir;
      let path = Filename.concat dir (name ^ ".telemetry.json") in
      Obs_json.to_file ~path doc;
      Printf.eprintf "[nisq-bench] telemetry written to %s\n%!" path)

(* Shared Bechamel driver: measure a test tree, return sorted
   (name, ns/run) rows. *)
let measure ~quota tests =
  let open Bechamel in
  let open Toolkit in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second quota) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let print_rows rows =
  List.iter
    (fun (name, ns) ->
      if ns >= 1_000_000.0 then
        Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1_000_000.0)
      else if ns >= 1_000.0 then
        Printf.printf "%-40s %10.3f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "%-40s %10.1f ns/run\n" name ns)
    rows

(* The compile fast-path micro-benchmarks: the placement DFS inner loop,
   the all-pairs routing solve a cold cache pays once per calibration,
   and a small figure-cell sweep over the domain pool (warm route cache,
   cells fanned out). [micro-compile] runs only these, with a short
   quota, and writes the machine-readable baseline BENCH_compile.json
   that tools/jsonlint --bench checks in CI. *)
(* The parallel-solver micro must run LAST: once its lazy pool spins
   up, the extra domains join every minor-GC barrier and visibly slow
   whatever single-domain benchmark runs next to it on small machines.
   Every micro list flows through this assertion so a reordering (or an
   appended benchmark) fails loudly at startup instead of silently
   skewing the published numbers. *)
let parallel_micro_name = "solver:placement-parallel"

let assert_parallel_last tests =
  (match List.rev tests with
  | [] -> invalid_arg "bench: empty micro-benchmark list"
  | last :: _ ->
      let name = Bechamel.Test.name last in
      if name <> parallel_micro_name then
        invalid_arg
          (Printf.sprintf
             "bench: %s must be the last micro-benchmark, found %S last"
             parallel_micro_name name));
  tests

let compile_path_tests () =
  let open Bechamel in
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = Benchmarks.by_name "BV4" in
  let adder = Benchmarks.by_name "Adder" in
  let topo64 = Synth.grid_for ~qubits:64 in
  let calib64 = Calib_gen.generate ~topology:topo64 ~seed:11 ~day:0 () in
  let paths = Nisq_device.Paths.make calib in
  let problem =
    Nisq_compiler.Reliability.placement_problem paths ~omega:0.5
      ~policy:Config.One_bend adder.Benchmarks.circuit
  in
  let bv8 = Benchmarks.by_name "BV8" in
  let forbid slot = not (Nisq_device.Calibration.qubit_live calib slot) in
  let problem_bv8 =
    Nisq_compiler.Reliability.placement_problem paths ~omega:0.5
      ~policy:Config.One_bend bv8.Benchmarks.circuit
  in
  let seed_bv8 =
    Nisq_compiler.Layout.to_array
      (Nisq_compiler.Greedy.edge_first paths bv8.Benchmarks.circuit)
  in
  (* The parallel micro runs on its own 4-worker pool, created on first
     use and left to die with the process: Bechamel replays the staged
     closure long after this constructor returns. *)
  let solver_pool = lazy (Pool.create ~size:4 ()) in
  let stage f = Staged.stage f in
  [
    Test.make ~name:"solver:placement-dfs"
      (stage (fun () -> Nisq_solver.Placement.solve problem));
    Test.make ~name:"solver:placement-dfs-bv8"
      (stage (fun () -> Nisq_solver.Placement.solve ~forbid problem_bv8));
    Test.make ~name:"paths:all-pairs"
      (stage (fun () -> Nisq_device.Paths.make calib64));
    Test.make ~name:"bench:figure-cells"
      (stage (fun () ->
           E.map_cells
             (List.concat_map
                (fun b ->
                  List.map
                    (fun config () ->
                      (E.evaluate ~trials:64 ~config ~calib b).E.success)
                    [
                      Config.make Config.T_smt_star;
                      Config.make (Config.R_smt_star 0.5);
                    ])
                [ bv4; adder ])));
    (* Keep this one LAST — [assert_parallel_last] enforces it. *)
    Test.make ~name:parallel_micro_name
      (stage (fun () ->
           Nisq_solver.Parallel.solve_placement ~forbid ~seed:seed_bv8
             ~pool:(Lazy.force solver_pool) problem_bv8));
  ]
  |> assert_parallel_last

let today_utc () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

(* Prior trajectory entries of an existing baseline at [path] carrying
   the given [schema]: a matching trajectory file contributes its
   entries as-is, a legacy compile/1 file becomes a single entry dated
   "legacy", anything unreadable starts the trajectory over (with a
   note — growth must never make `make bench-compile` fail). *)
let read_trajectory ~schema path =
  if not (Sys.file_exists path) then []
  else
    let parsed =
      try Obs_json.of_string (In_channel.with_open_text path In_channel.input_all)
      with Sys_error msg -> Error msg
    in
    match parsed with
    | Error msg ->
        Printf.eprintf "[nisq-bench] %s unreadable (%s); starting a fresh trajectory\n%!"
          path msg;
        []
    | Ok v -> (
        match (Obs_json.member "schema" v, Obs_json.member "trajectory" v) with
        | Some (Obs_json.String s), Some (Obs_json.List entries) when s = schema
          ->
            entries
        | Some (Obs_json.String "nisq-bench-compile/1"), _
          when schema = "nisq-bench-compile/2" -> (
            match Obs_json.member "benchmarks" v with
            | Some benchmarks ->
                [
                  Obs_json.Obj
                    [
                      ("date", Obs_json.String "legacy");
                      ("benchmarks", benchmarks);
                    ];
                ]
            | None -> [])
        | _ ->
            Printf.eprintf
              "[nisq-bench] %s has an unknown schema; starting a fresh trajectory\n%!"
              path;
            [])

(* Append today's entry to the trajectory at [out]; a same-day rerun
   replaces its previous entry so repeated local runs stay idempotent. *)
let append_trajectory ~schema ~out benchmarks =
  let today = today_utc () in
  let entry =
    Obs_json.Obj
      [ ("date", Obs_json.String today); ("benchmarks", benchmarks) ]
  in
  let prior =
    List.filter
      (fun e ->
        match Obs_json.member "date" e with
        | Some (Obs_json.String d) -> d <> today
        | _ -> true)
      (read_trajectory ~schema out)
  in
  let doc =
    Obs_json.Obj
      [
        ("schema", Obs_json.String schema);
        ("trajectory", Obs_json.List (prior @ [ entry ]));
      ]
  in
  Obs_json.to_file ~path:out doc;
  List.length prior + 1

let micro_compile ~out () =
  let open Bechamel in
  Obs_metrics.set_enabled false;
  Obs_trace.set_enabled false;
  let tests =
    Test.make_grouped ~name:"nisq" ~fmt:"%s/%s" (compile_path_tests ())
  in
  let rows = measure ~quota:0.25 tests in
  print_endline "=== Bechamel micro-benchmarks: compile fast path ===";
  print_rows rows;
  let benchmarks =
    Obs_json.List
      (List.map
         (fun (name, ns) ->
           (* a pathological estimate must not turn into JSON null *)
           let ns = if Float.is_finite ns then ns else 0.0 in
           Obs_json.Obj
             [
               ("name", Obs_json.String name);
               ("ns_per_run", Obs_json.Float ns);
             ])
         rows)
  in
  let entries =
    append_trajectory ~schema:"nisq-bench-compile/2" ~out benchmarks
  in
  Printf.eprintf "[nisq-bench] compile baseline appended to %s (%d entries)\n%!"
    out entries

(* ------------------------------------------------------------------ *)
(* scale: the simulator weak/strong scaling sweep (make bench-scale)   *)
(* ------------------------------------------------------------------ *)

(* GHZ chain over [qubits]: H then a CNOT ladder — pure Clifford, so
   the stabilizer fast path owns every noisy trial. [poison] inserts a
   single T gate, which disqualifies the whole job and routes every
   trial to the dense backend: the pair measures both simulator tiers
   over the same topology and noise model. *)
let scale_runner ~calib ~qubits ~poison =
  let module B = Nisq_circuit.Circuit.Builder in
  let b =
    B.create
      ~name:(Printf.sprintf "GHZ%d%s" qubits (if poison then "t" else ""))
      qubits
  in
  B.h b 0;
  for q = 1 to qubits - 1 do
    B.cnot b (q - 1) q
  done;
  if poison then B.t_gate b 0;
  B.measure_all b;
  E.runner_of
    (Compile.run ~config:(Config.make Config.Greedy_e) ~calib (B.build b))

let scale ~out ~smoke () =
  Obs_metrics.set_enabled false;
  Obs_trace.set_enabled false;
  let strong_trials = if smoke then 256 else 4096 in
  let weak_base = if smoke then 128 else 1024 in
  let qubit_counts = if smoke then [ 4; 6 ] else [ 4; 8; 12 ] in
  (* The committed sweep always covers the same pool sizes so every
     trajectory entry carries one benchmark-name set; the CI smoke
     instead probes the single size NISQ_DOMAINS selected for its job
     (and writes to a scratch file the gate never reads). *)
  let pool_sizes =
    if smoke then [ Pool.size (Pool.default ()) ] else [ 0; 1; 4 ]
  in
  let seed = 7 in
  let calib = Ibmq16.calibration ~day:0 () in
  let rows = ref [] in
  let push name ns extras = rows := (name, ns, extras) :: !rows in
  (* Wall clock over one full success_rate call. The minor-GC word
     delta only counts this domain's allocation, so it is published
     solely for d0 rows, where every chunk runs right here. *)
  let timed ~size ~trials runner =
    let pool = Pool.create ~size () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    (* one small untimed run first: pool spin-up, scratch-arena
       creation and lazy code paths must not bill the first row *)
    let (_ : float) = Runner.success_rate ~trials:64 ~pool ~seed runner in
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let (_ : float) = Runner.success_rate ~trials ~pool ~seed runner in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Gc.minor_words () -. w0)
  in
  let record ~name ~qubits ~domains ~mode ~trials (dt, words) =
    let ns = dt *. 1e9 /. float_of_int trials in
    let extras =
      [
        ("trials_per_sec", Obs_json.Float (float_of_int trials /. dt));
        ("qubits", Obs_json.Int qubits);
        ("domains", Obs_json.Int domains);
        ("mode", Obs_json.String mode);
        ("trials", Obs_json.Int trials);
      ]
      @
      if domains = 0 then
        [
          ( "minor_words_per_trial",
            Obs_json.Float (words /. float_of_int trials) );
        ]
      else []
    in
    push name ns extras
  in
  List.iter
    (fun qubits ->
      let clifford = scale_runner ~calib ~qubits ~poison:false in
      let dense = scale_runner ~calib ~qubits ~poison:true in
      List.iter
        (fun d ->
          (* strong scaling: fixed total work, growing pool *)
          record
            ~name:(Printf.sprintf "scale:ghz%d:d%d:strong" qubits d)
            ~qubits ~domains:d ~mode:"strong" ~trials:strong_trials
            (timed ~size:d ~trials:strong_trials clifford);
          (* weak scaling: work grows with the pool *)
          let wt = weak_base * max 1 d in
          record
            ~name:(Printf.sprintf "scale:ghz%d:d%d:weak" qubits d)
            ~qubits ~domains:d ~mode:"weak" ~trials:wt
            (timed ~size:d ~trials:wt clifford))
        pool_sizes;
      (* The fast-off reference: identical job, stabilizer path forced
         off — the committed before/after evidence for the Clifford
         tier (results stay bit-identical either way). *)
      Runner.set_stabilizer_enabled (Some false);
      Fun.protect
        ~finally:(fun () -> Runner.set_stabilizer_enabled None)
        (fun () ->
          record
            ~name:(Printf.sprintf "scale:ghz%d:d0:fastoff" qubits)
            ~qubits ~domains:0 ~mode:"fastoff" ~trials:strong_trials
            (timed ~size:0 ~trials:strong_trials clifford));
      (* The T-poisoned twin exercises the dense Bigarray kernels via
         the per-job fallback. *)
      record
        ~name:(Printf.sprintf "scale:ghzt%d:d0:strong" qubits)
        ~qubits ~domains:0 ~mode:"dense" ~trials:strong_trials
        (timed ~size:0 ~trials:strong_trials dense))
    qubit_counts;
  let rows = List.rev !rows in
  print_endline "=== simulator scaling sweep (wall clock) ===";
  print_rows (List.map (fun (n, ns, _) -> (n, ns)) rows);
  List.iter
    (fun qubits ->
      let find suffix =
        List.find_map
          (fun (n, ns, _) ->
            if n = Printf.sprintf "scale:ghz%d:%s" qubits suffix then Some ns
            else None)
          rows
      in
      match (find "d0:strong", find "d0:fastoff") with
      | Some fast, Some off when fast > 0.0 ->
          Printf.printf
            "ghz%-2d stabilizer speedup: %4.1fx (%.0f -> %.0f ns/trial)\n"
            qubits (off /. fast) off fast
      | _ -> ())
    qubit_counts;
  let benchmarks =
    Obs_json.List
      (List.map
         (fun (name, ns, extras) ->
           let ns = if Float.is_finite ns then ns else 0.0 in
           Obs_json.Obj
             (("name", Obs_json.String name)
             :: ("ns_per_run", Obs_json.Float ns)
             :: extras))
         rows)
  in
  let entries = append_trajectory ~schema:"nisq-bench-sim/1" ~out benchmarks in
  Printf.eprintf
    "[nisq-bench] sim scaling baseline appended to %s (%d entries)\n%!" out
    entries

let micro () =
  let open Bechamel in
  (* The obs:* benchmarks quantify the DISABLED telemetry path; make the
     state explicit so a preceding figure run cannot leak an enabled
     registry into the measurements. *)
  Obs_metrics.set_enabled false;
  Obs_trace.set_enabled false;
  Nisq_obs.Events.set_enabled false;
  let obs_counter = Obs_metrics.counter "bench.obs.counter" in
  let pool = Pool.default () in
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let toffoli = (Benchmarks.by_name "Toffoli").Benchmarks.circuit in
  let adder = (Benchmarks.by_name "Adder").Benchmarks.circuit in
  let rand64 = Synth.random_circuit ~qubits:64 ~gates:512 ~seed:11 () in
  let topo64 = Synth.grid_for ~qubits:64 in
  let calib64 = Calib_gen.generate ~topology:topo64 ~seed:11 ~day:0 () in
  let compiled_bv4 =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4
  in
  let runner = E.runner_of compiled_bv4 in
  let stage f = Staged.stage f in
  let tests =
    Test.make_grouped ~name:"nisq" ~fmt:"%s/%s"
      ([
        Test.make ~name:"table2:build-suite"
          (stage (fun () -> List.length Benchmarks.all));
        Test.make ~name:"fig1:one-day-calibration"
          (stage (fun () -> Ibmq16.calibration ~day:3 ()));
        Test.make ~name:"fig5:rsmt-compile-bv4"
          (stage (fun () ->
               Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4));
        Test.make ~name:"fig6:rsmt-compile-toffoli"
          (stage (fun () ->
               Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib
                 toffoli));
        Test.make ~name:"fig7:tsmt-star-compile-toffoli"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.T_smt_star) ~calib toffoli));
        Test.make ~name:"fig8:qiskit-compile-bv4"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Qiskit) ~calib bv4));
        Test.make ~name:"fig9:tsmt-rr-compile-adder"
          (stage (fun () ->
               Compile.run
                 ~config:(Config.make ~routing:Config.Rectangle_reservation Config.T_smt)
                 ~calib adder));
        Test.make ~name:"fig10:greedy-e-compile-adder"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Greedy_e) ~calib adder));
        Test.make ~name:"fig11:greedy-e-compile-64q"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Greedy_e) ~calib:calib64
                 rand64));
        Test.make ~name:"sim:one-noisy-trial-bv4"
          (stage
             (let rng = Nisq_util.Rng.create 1 in
              fun () -> Runner.run_trial runner rng));
        (* trial-loop throughput: the domain-pool path vs the sequential
           reference, same seed, bit-identical results *)
        Test.make ~name:"sim:success-rate-256"
          (stage (fun () -> Runner.success_rate ~trials:256 ~pool ~seed:1 runner));
        Test.make ~name:"sim:success-rate-256-seq"
          (stage (fun () -> Runner.success_rate_seq ~trials:256 ~seed:1 runner));
        (* disabled-telemetry overhead: these three should be within
           noise of each other (see EXPERIMENTS.md) *)
        Test.make ~name:"obs:noop"
          (stage (fun () -> Sys.opaque_identity 0));
        Test.make ~name:"obs:span-overhead"
          (stage (fun () ->
               Obs_trace.with_span "bench" (fun () -> Sys.opaque_identity 0)));
        Test.make ~name:"obs:counter-incr"
          (stage (fun () -> Obs_metrics.incr obs_counter));
        Test.make ~name:"obs:event-disabled"
          (stage (fun () ->
               Nisq_obs.Events.emit ~domain:"bench" Nisq_obs.Events.Debug
                 "tick"));
      ]
      @ compile_path_tests ()
      |> assert_parallel_last)
  in
  let rows = measure ~quota:0.5 tests in
  print_endline "=== Bechamel micro-benchmarks (monotonic clock) ===";
  print_rows rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* solver-par-check: the CI assertion behind the parallel-solver claims *)
(* ------------------------------------------------------------------ *)

(* Asserts, per instance: (1) the parallel fan-out returns the
   sequential objective; (2) its trajectory is byte-identical at pool
   sizes 0, 1 and 4 (assignment, objective bits, nodes_visited,
   proven_optimal); (3) Greedy incumbent seeding never increases the
   sequential node count. Exits 1 on any violation. *)
let solver_par_check () =
  let module Placement = Nisq_solver.Placement in
  let module Parallel = Nisq_solver.Parallel in
  let calib = Ibmq16.calibration ~day:0 () in
  let paths = Nisq_device.Paths.make calib in
  let forbid slot = not (Nisq_device.Calibration.qubit_live calib slot) in
  let failures = ref 0 in
  let check cond msg =
    if not cond then begin
      Printf.printf "  FAIL %s\n" msg;
      incr failures
    end
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  List.iter
    (fun name ->
      let b = Benchmarks.by_name name in
      let problem =
        Nisq_compiler.Reliability.placement_problem paths ~omega:0.5
          ~policy:Config.One_bend b.Benchmarks.circuit
      in
      let seed =
        Nisq_compiler.Layout.to_array
          (Nisq_compiler.Greedy.edge_first paths b.Benchmarks.circuit)
      in
      let seq, seq_ms = time (fun () -> Placement.solve ~forbid problem) in
      let seeded =
        Placement.solve ~forbid
          ~incumbent:(seed, Placement.score problem seed)
          problem
      in
      let par_at size =
        let pool = Pool.create ~size () in
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        time (fun () -> Parallel.solve_placement ~forbid ~seed ~pool problem)
      in
      let (p0, _), (p1, _), (p4, p4_ms) = (par_at 0, par_at 1, par_at 4) in
      Printf.printf
        "%-4s seq %6d nodes %7.1f ms obj %.6f | fanout@4 %6d nodes %7.1f ms \
         obj %.6f\n"
        name seq.Placement.stats.Nisq_solver.Budget.nodes_visited seq_ms
        seq.Placement.objective
        p4.Placement.stats.Nisq_solver.Budget.nodes_visited p4_ms
        p4.Placement.objective;
      check
        (p4.Placement.objective = seq.Placement.objective)
        "parallel objective differs from sequential";
      check
        (seeded.Placement.stats.Nisq_solver.Budget.nodes_visited
        <= seq.Placement.stats.Nisq_solver.Budget.nodes_visited)
        "greedy seeding increased the sequential node count";
      List.iter
        (fun (p : Placement.solution) ->
          check
            (p.Placement.assignment = p4.Placement.assignment)
            "assignment differs across pool sizes";
          check
            (Int64.bits_of_float p.Placement.objective
            = Int64.bits_of_float p4.Placement.objective)
            "objective bits differ across pool sizes";
          check
            (p.Placement.stats.Nisq_solver.Budget.nodes_visited
            = p4.Placement.stats.Nisq_solver.Budget.nodes_visited)
            "nodes_visited differs across pool sizes";
          check
            (p.Placement.stats.Nisq_solver.Budget.proven_optimal
            = p4.Placement.stats.Nisq_solver.Budget.proven_optimal)
            "proven_optimal differs across pool sizes")
        [ p0; p1 ])
    [ "BV4"; "BV8" ];
  if !failures > 0 then begin
    Printf.printf "solver-par-check: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "solver-par-check: OK"

(* ------------------------------------------------------------------ *)
(* Run lifecycle: argument parsing, checkpointed dispatch, shutdown     *)
(* ------------------------------------------------------------------ *)

type options = {
  target : string;
  trials : int;
  resume : string option;
  force : bool;
  run_id : string option;
  deadline : float option;
  out : string option;
  smoke : bool;
}

let usage () =
  Printf.eprintf
    "usage: main.exe [TARGET] [TRIALS] [--run-id ID] [--resume ID] \
     [--resume-force] [--deadline DUR] [--out PATH] [--smoke]\n\
     TARGET: table2|fig1|fig5..fig11|ablations|micro|micro-compile|scale|solver-par-check|quick|all\n";
  exit 2

let parse_args () =
  let positional = ref [] in
  let resume = ref None and force = ref false in
  let run_id = ref None and deadline = ref None in
  let out = ref None in
  let smoke = ref false in
  let rec go = function
    | [] -> ()
    | "--resume" :: v :: rest ->
        resume := Some v;
        go rest
    | "--resume-force" :: rest ->
        force := true;
        go rest
    | "--smoke" :: rest ->
        smoke := true;
        go rest
    | "--run-id" :: v :: rest ->
        run_id := Some v;
        go rest
    | "--out" :: v :: rest ->
        out := Some v;
        go rest
    | "--deadline" :: v :: rest ->
        (match Deadline.parse_duration v with
        | Ok s -> deadline := Some s
        | Error msg ->
            Printf.eprintf "main.exe: bad --deadline %S: %s\n" v msg;
            exit 2);
        go rest
    | ("--resume" | "--run-id" | "--deadline" | "--out") :: [] ->
        Printf.eprintf "main.exe: missing value for the last flag\n";
        exit 2
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        Printf.eprintf "main.exe: unknown flag %s\n" arg;
        usage ()
    | arg :: rest ->
        positional := arg :: !positional;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let target, trials =
    match List.rev !positional with
    | [] -> ("all", 2048)
    | [ t ] -> (t, 2048)
    | [ t; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> (t, n)
        | _ ->
            Printf.eprintf "main.exe: TRIALS must be a positive integer\n";
            exit 2)
    | _ -> usage ()
  in
  { target; trials; resume = !resume; force = !force; run_id = !run_id;
    deadline = !deadline; out = !out; smoke = !smoke }

(* The figures of the composite targets, in print order. Splitting
   [run_all] per figure is what gives resume its granularity: a
   completed figure replays from its saved table, an unfinished one
   recomputes only the cells missing from the journal. *)
let figure_specs ~trials ~quick : (string * (unit -> string)) list =
  [
    ("table2", fun () -> E.table2 ());
    ("fig1", fun () -> E.fig1 ());
    ("fig5", fun () -> E.fig5 ~trials ());
    ("fig6", fun () -> E.fig6 ~trials ());
    ("fig7", fun () -> E.fig7 ~trials ());
    ("fig8", fun () -> E.fig8 ());
    ("fig9", fun () -> E.fig9 ());
    ("fig10", fun () -> E.fig10 ~trials ());
    ("fig11", fun () -> E.fig11 ~quick ());
    ("ablation_movement", fun () -> E.ablation_movement ~trials ());
    ("ablation_topology", fun () -> E.ablation_topology ~trials ());
    ("ablation_trials", fun () -> E.ablation_trials ());
    ("ablation_high_variance", fun () -> E.ablation_high_variance ~trials ());
    ("ablation_architecture", fun () -> E.ablation_architecture ~trials ());
  ]

(* One figure under an optional checkpointed run: replay the saved table
   if the journal says the figure completed, otherwise compute it (its
   cells consult the journal individually) and mark it done. *)
let figure_text run name f =
  match run with
  | None -> f ()
  | Some r -> (
      match Run.figure_cached r name with
      | Some text -> text
      | None ->
          Deadline.raise_if_cancelled ();
          let text = f () in
          Run.figure_done r name text;
          text)

let dispatch opts run =
  let trials = opts.trials in
  let single name f = print_string (figure_telemetry name (fun () -> figure_text run name f)) in
  let composite name specs =
    figure_telemetry name (fun () ->
        List.iter
          (fun (fname, f) ->
            print_string (figure_text run fname f);
            print_newline ())
          specs)
  in
  match opts.target with
  | "table2" -> single "table2" (fun () -> E.table2 ())
  | "fig1" -> single "fig1" (fun () -> E.fig1 ())
  | "fig5" -> single "fig5" (fun () -> E.fig5 ~trials ())
  | "fig6" -> single "fig6" (fun () -> E.fig6 ~trials ())
  | "fig7" -> single "fig7" (fun () -> E.fig7 ~trials ())
  | "fig8" -> single "fig8" (fun () -> E.fig8 ())
  | "fig9" -> single "fig9" (fun () -> E.fig9 ())
  | "fig10" -> single "fig10" (fun () -> E.fig10 ~trials ())
  | "fig11" -> single "fig11" (fun () -> E.fig11 ())
  | "ablations" ->
      single "ablations" (fun () ->
          String.concat ""
            [
              E.ablation_movement ~trials ();
              E.ablation_topology ~trials ();
              E.ablation_trials ();
              E.ablation_high_variance ~trials ();
              E.ablation_architecture ~trials ();
            ])
  | "micro" -> micro ()
  | "solver-par-check" -> solver_par_check ()
  | "micro-compile" ->
      micro_compile
        ~out:(Option.value opts.out ~default:"BENCH_compile.json")
        ()
  | "scale" ->
      scale
        ~out:(Option.value opts.out ~default:"BENCH_sim.json")
        ~smoke:opts.smoke ()
  | "quick" ->
      composite "quick" (figure_specs ~trials:512 ~quick:true);
      micro ()
  | "all" ->
      composite "all" (figure_specs ~trials ~quick:false);
      micro ()
  | other ->
      Printf.eprintf
        "unknown argument %S (want \
         table2|fig1|fig5..fig11|ablations|micro|micro-compile|scale|solver-par-check|quick|all)\n"
        other;
      exit 2

let () =
  let opts = parse_args () in
  Nisq_obs.Telemetry.set_sink Atomic_io.write_file;
  Nisq_obs.Telemetry.init_from_env ();
  Nisq_faultkit.Faultkit.init_from_env ();
  (* NISQ_SOLVER_DOMAINS/NISQ_SOLVER_PORTFOLIO switch the compile paths
     inside figure cells onto the parallel solver, exactly as in nisqc;
     the CI bench-smoke matrix runs this binary at 0, 1 and 4. *)
  Nisq_solver.Parallel.init_from_env ();
  Deadline.init_from_env ();
  Option.iter Deadline.arm_seconds opts.deadline;
  Signals.install ();
  (* Every figure's Monte-Carlo trials run on the shared domain pool;
     results are bit-identical for any worker count (NISQ_DOMAINS). *)
  Printf.eprintf "[nisq-bench] domain pool: %d workers (NISQ_DOMAINS=%s)\n%!"
    (Pool.size (Pool.default ()))
    (Option.value ~default:"unset" (Sys.getenv_opt "NISQ_DOMAINS"));
  (* The run identity ties a journal to what was asked of the binary;
     resuming under different arguments would splice answers to a
     different question into the tables, so it is refused (unless
     forced). Cell digests additionally pin seed, calibration and the
     compiled circuit, so even a forced resume only ever replays cells
     that are exactly equal. *)
  let identity =
    Obs_json.Obj
      [
        ("harness", Obs_json.String "bench/main");
        ("target", Obs_json.String opts.target);
        ("trials", Obs_json.Int opts.trials);
      ]
  in
  let run =
    match (opts.resume, opts.run_id) with
    | Some id, _ -> (
        match Run.resume ~run_id:id ~identity ~force:opts.force () with
        | Ok r ->
            Printf.eprintf "[nisq-bench] resuming run %s from %s\n%!" id
              (Run.dir r);
            Some r
        | Error msg ->
            Printf.eprintf "main.exe: cannot resume: %s\n" msg;
            exit 2)
    | None, Some id ->
        let r = Run.start ~run_id:id ~identity () in
        Printf.eprintf "[nisq-bench] journaling run %s under %s\n%!" id
          (Run.dir r);
        Some r
    | None, None -> None
  in
  Option.iter Run.install run;
  match dispatch opts run with
  | () ->
      Option.iter
        (fun r ->
          let cached, computed = Run.cache_stats r in
          Printf.eprintf
            "[nisq-bench] run %s completed (%d cells replayed, %d computed)\n%!"
            (Run.id r) cached computed;
          Run.finish r ~status:"completed")
        run;
      (* Flush any NISQ_EVENTS/NISQ_PROM destinations armed above. *)
      if
        Nisq_obs.Telemetry.events_path () <> None
        || Nisq_obs.Telemetry.prom_path () <> None
      then Nisq_obs.Telemetry.finish ()
  | exception Deadline.Cancelled reason ->
      let status =
        match reason with
        | Deadline.Deadline -> "degraded:deadline"
        | Deadline.Sigint -> "interrupted:sigint"
        | Deadline.Sigterm -> "interrupted:sigterm"
      in
      Option.iter
        (fun r ->
          Run.finish r ~status;
          Printf.eprintf
            "[nisq-bench] %s: partial results checkpointed in %s — resume \
             with --resume %s\n\
             %!"
            status (Run.dir r) (Run.id r))
        run;
      if run = None then
        Printf.eprintf
          "[nisq-bench] %s: no --run-id given, nothing checkpointed\n%!" status;
      exit (Deadline.exit_code reason)
