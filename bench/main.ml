(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the compile passes.

   Usage:
     main.exe                  run everything (figures + micro-benches)
     main.exe fig5 [trials]    one figure (table2, fig1, fig5..fig11)
     main.exe micro            only the Bechamel micro-benchmarks
     main.exe quick            figures with reduced trial counts *)

module E = Nisq_bench.Experiments
module Benchmarks = Nisq_bench.Benchmarks
module Synth = Nisq_bench.Synth
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Calib_gen = Nisq_device.Calib_gen
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure compile path        *)
(* ------------------------------------------------------------------ *)

module Pool = Nisq_util.Pool
module Obs_metrics = Nisq_obs.Metrics
module Obs_trace = Nisq_obs.Trace
module Obs_json = Nisq_obs.Json

(* ------------------------------------------------------------------ *)
(* Per-figure telemetry capture                                        *)
(*                                                                     *)
(* Each figure run gets a fresh metrics registry + span store and      *)
(* leaves a machine-readable summary in _telemetry/<id>.telemetry.json *)
(* (override the directory with NISQ_TELEMETRY_DIR).                   *)
(* ------------------------------------------------------------------ *)

let telemetry_dir () =
  Option.value (Sys.getenv_opt "NISQ_TELEMETRY_DIR") ~default:"_telemetry"

let figure_telemetry name f =
  Obs_metrics.set_enabled true;
  Obs_trace.set_enabled true;
  Obs_metrics.reset ();
  Obs_trace.reset ();
  let out = f () in
  let doc =
    Obs_json.Obj
      [
        ("figure", Obs_json.String name);
        ("metrics", Obs_metrics.dump_json ());
        ("spans", Obs_trace.summary_json ());
      ]
  in
  Obs_metrics.set_enabled false;
  Obs_trace.set_enabled false;
  let dir = telemetry_dir () in
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
   with Sys_error _ -> ());
  let path = Filename.concat dir (name ^ ".telemetry.json") in
  Obs_json.to_file ~path doc;
  Printf.eprintf "[nisq-bench] telemetry written to %s\n%!" path;
  out

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* The obs:* benchmarks quantify the DISABLED telemetry path; make the
     state explicit so a preceding figure run cannot leak an enabled
     registry into the measurements. *)
  Obs_metrics.set_enabled false;
  Obs_trace.set_enabled false;
  let obs_counter = Obs_metrics.counter "bench.obs.counter" in
  let pool = Pool.default () in
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let toffoli = (Benchmarks.by_name "Toffoli").Benchmarks.circuit in
  let adder = (Benchmarks.by_name "Adder").Benchmarks.circuit in
  let rand64 = Synth.random_circuit ~qubits:64 ~gates:512 ~seed:11 () in
  let topo64 = Synth.grid_for ~qubits:64 in
  let calib64 = Calib_gen.generate ~topology:topo64 ~seed:11 ~day:0 () in
  let compiled_bv4 =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4
  in
  let runner = E.runner_of compiled_bv4 in
  let stage f = Staged.stage f in
  let tests =
    Test.make_grouped ~name:"nisq" ~fmt:"%s/%s"
      [
        Test.make ~name:"table2:build-suite"
          (stage (fun () -> List.length Benchmarks.all));
        Test.make ~name:"fig1:one-day-calibration"
          (stage (fun () -> Ibmq16.calibration ~day:3 ()));
        Test.make ~name:"fig5:rsmt-compile-bv4"
          (stage (fun () ->
               Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4));
        Test.make ~name:"fig6:rsmt-compile-toffoli"
          (stage (fun () ->
               Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib
                 toffoli));
        Test.make ~name:"fig7:tsmt-star-compile-toffoli"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.T_smt_star) ~calib toffoli));
        Test.make ~name:"fig8:qiskit-compile-bv4"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Qiskit) ~calib bv4));
        Test.make ~name:"fig9:tsmt-rr-compile-adder"
          (stage (fun () ->
               Compile.run
                 ~config:(Config.make ~routing:Config.Rectangle_reservation Config.T_smt)
                 ~calib adder));
        Test.make ~name:"fig10:greedy-e-compile-adder"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Greedy_e) ~calib adder));
        Test.make ~name:"fig11:greedy-e-compile-64q"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Greedy_e) ~calib:calib64
                 rand64));
        Test.make ~name:"sim:one-noisy-trial-bv4"
          (stage
             (let rng = Nisq_util.Rng.create 1 in
              fun () -> Runner.run_trial runner rng));
        (* trial-loop throughput: the domain-pool path vs the sequential
           reference, same seed, bit-identical results *)
        Test.make ~name:"sim:success-rate-256"
          (stage (fun () -> Runner.success_rate ~trials:256 ~pool ~seed:1 runner));
        Test.make ~name:"sim:success-rate-256-seq"
          (stage (fun () -> Runner.success_rate_seq ~trials:256 ~seed:1 runner));
        (* disabled-telemetry overhead: these three should be within
           noise of each other (see EXPERIMENTS.md) *)
        Test.make ~name:"obs:noop"
          (stage (fun () -> Sys.opaque_identity 0));
        Test.make ~name:"obs:span-overhead"
          (stage (fun () ->
               Obs_trace.with_span "bench" (fun () -> Sys.opaque_identity 0)));
        Test.make ~name:"obs:counter-incr"
          (stage (fun () -> Obs_metrics.incr obs_counter));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "=== Bechamel micro-benchmarks (monotonic clock) ===";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1_000_000.0 then
        Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1_000_000.0)
      else if ns >= 1_000.0 then
        Printf.printf "%-40s %10.3f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "%-40s %10.1f ns/run\n" name ns)
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let trials =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2048
  in
  (* Every figure's Monte-Carlo trials run on the shared domain pool;
     results are bit-identical for any worker count (NISQ_DOMAINS). *)
  Printf.eprintf "[nisq-bench] domain pool: %d workers (NISQ_DOMAINS=%s)\n%!"
    (Pool.size (Pool.default ()))
    (Option.value ~default:"unset" (Sys.getenv_opt "NISQ_DOMAINS"));
  let figure name f = print_string (figure_telemetry name f) in
  match arg with
  | "table2" -> figure "table2" (fun () -> E.table2 ())
  | "fig1" -> figure "fig1" (fun () -> E.fig1 ())
  | "fig5" -> figure "fig5" (fun () -> E.fig5 ~trials ())
  | "fig6" -> figure "fig6" (fun () -> E.fig6 ~trials ())
  | "fig7" -> figure "fig7" (fun () -> E.fig7 ~trials ())
  | "fig8" -> figure "fig8" (fun () -> E.fig8 ())
  | "fig9" -> figure "fig9" (fun () -> E.fig9 ())
  | "fig10" -> figure "fig10" (fun () -> E.fig10 ~trials ())
  | "fig11" -> figure "fig11" (fun () -> E.fig11 ())
  | "ablations" ->
      figure "ablations" (fun () ->
          String.concat ""
            [
              E.ablation_movement ~trials ();
              E.ablation_topology ~trials ();
              E.ablation_trials ();
              E.ablation_high_variance ~trials ();
              E.ablation_architecture ~trials ();
            ])
  | "micro" -> micro ()
  | "quick" ->
      figure "quick" (fun () -> E.run_all ~trials:512 ~quick:true ());
      micro ()
  | "all" ->
      figure "all" (fun () -> E.run_all ~trials ());
      micro ()
  | other ->
      Printf.eprintf
        "unknown argument %S (want table2|fig1|fig5..fig11|ablations|micro|quick|all)\n"
        other;
      exit 2
