(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the compile passes.

   Usage:
     main.exe                  run everything (figures + micro-benches)
     main.exe fig5 [trials]    one figure (table2, fig1, fig5..fig11)
     main.exe micro            only the Bechamel micro-benchmarks
     main.exe quick            figures with reduced trial counts *)

module E = Nisq_bench.Experiments
module Benchmarks = Nisq_bench.Benchmarks
module Synth = Nisq_bench.Synth
module Config = Nisq_compiler.Config
module Compile = Nisq_compiler.Compile
module Calib_gen = Nisq_device.Calib_gen
module Ibmq16 = Nisq_device.Ibmq16
module Runner = Nisq_sim.Runner

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure compile path        *)
(* ------------------------------------------------------------------ *)

module Pool = Nisq_util.Pool

let micro () =
  let open Bechamel in
  let open Toolkit in
  let pool = Pool.default () in
  let calib = Ibmq16.calibration ~day:0 () in
  let bv4 = (Benchmarks.by_name "BV4").Benchmarks.circuit in
  let toffoli = (Benchmarks.by_name "Toffoli").Benchmarks.circuit in
  let adder = (Benchmarks.by_name "Adder").Benchmarks.circuit in
  let rand64 = Synth.random_circuit ~qubits:64 ~gates:512 ~seed:11 () in
  let topo64 = Synth.grid_for ~qubits:64 in
  let calib64 = Calib_gen.generate ~topology:topo64 ~seed:11 ~day:0 () in
  let compiled_bv4 =
    Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4
  in
  let runner = E.runner_of compiled_bv4 in
  let stage f = Staged.stage f in
  let tests =
    Test.make_grouped ~name:"nisq" ~fmt:"%s/%s"
      [
        Test.make ~name:"table2:build-suite"
          (stage (fun () -> List.length Benchmarks.all));
        Test.make ~name:"fig1:one-day-calibration"
          (stage (fun () -> Ibmq16.calibration ~day:3 ()));
        Test.make ~name:"fig5:rsmt-compile-bv4"
          (stage (fun () ->
               Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib bv4));
        Test.make ~name:"fig6:rsmt-compile-toffoli"
          (stage (fun () ->
               Compile.run ~config:(Config.make (Config.R_smt_star 0.5)) ~calib
                 toffoli));
        Test.make ~name:"fig7:tsmt-star-compile-toffoli"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.T_smt_star) ~calib toffoli));
        Test.make ~name:"fig8:qiskit-compile-bv4"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Qiskit) ~calib bv4));
        Test.make ~name:"fig9:tsmt-rr-compile-adder"
          (stage (fun () ->
               Compile.run
                 ~config:(Config.make ~routing:Config.Rectangle_reservation Config.T_smt)
                 ~calib adder));
        Test.make ~name:"fig10:greedy-e-compile-adder"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Greedy_e) ~calib adder));
        Test.make ~name:"fig11:greedy-e-compile-64q"
          (stage (fun () ->
               Compile.run ~config:(Config.make Config.Greedy_e) ~calib:calib64
                 rand64));
        Test.make ~name:"sim:one-noisy-trial-bv4"
          (stage
             (let rng = Nisq_util.Rng.create 1 in
              fun () -> Runner.run_trial runner rng));
        (* trial-loop throughput: the domain-pool path vs the sequential
           reference, same seed, bit-identical results *)
        Test.make ~name:"sim:success-rate-256"
          (stage (fun () -> Runner.success_rate ~trials:256 ~pool ~seed:1 runner));
        Test.make ~name:"sim:success-rate-256-seq"
          (stage (fun () -> Runner.success_rate_seq ~trials:256 ~seed:1 runner));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "=== Bechamel micro-benchmarks (monotonic clock) ===";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1_000_000.0 then
        Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1_000_000.0)
      else if ns >= 1_000.0 then
        Printf.printf "%-40s %10.3f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "%-40s %10.1f ns/run\n" name ns)
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let trials =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2048
  in
  (* Every figure's Monte-Carlo trials run on the shared domain pool;
     results are bit-identical for any worker count (NISQ_DOMAINS). *)
  Printf.eprintf "[nisq-bench] domain pool: %d workers (NISQ_DOMAINS=%s)\n%!"
    (Pool.size (Pool.default ()))
    (Option.value ~default:"unset" (Sys.getenv_opt "NISQ_DOMAINS"));
  match arg with
  | "table2" -> print_string (E.table2 ())
  | "fig1" -> print_string (E.fig1 ())
  | "fig5" -> print_string (E.fig5 ~trials ())
  | "fig6" -> print_string (E.fig6 ~trials ())
  | "fig7" -> print_string (E.fig7 ~trials ())
  | "fig8" -> print_string (E.fig8 ())
  | "fig9" -> print_string (E.fig9 ())
  | "fig10" -> print_string (E.fig10 ~trials ())
  | "fig11" -> print_string (E.fig11 ())
  | "ablations" ->
      print_string (E.ablation_movement ~trials ());
      print_string (E.ablation_topology ~trials ());
      print_string (E.ablation_trials ());
      print_string (E.ablation_high_variance ~trials ());
      print_string (E.ablation_architecture ~trials ())
  | "micro" -> micro ()
  | "quick" ->
      print_string (E.run_all ~trials:512 ~quick:true ());
      micro ()
  | "all" ->
      print_string (E.run_all ~trials ());
      micro ()
  | other ->
      Printf.eprintf
        "unknown argument %S (want table2|fig1|fig5..fig11|ablations|micro|quick|all)\n"
        other;
      exit 2
