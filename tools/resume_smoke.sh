#!/bin/sh
# Kill-and-resume smoke test for the crash-safe run layer.
#
# Exercises the full crash story end to end against the real bench
# harness binary:
#   1. a reference run (no journaling) records the expected output;
#   2. a victim run is killed deterministically at chunk 3 via fault
#      injection (same code path as SIGTERM: exit 143, checkpoint);
#   3. --resume replays the journal and must reproduce the reference
#      output byte for byte;
#   4. resuming under a different identity is refused (exit 2);
#   5. a 1 ms deadline cancels with exit 3 and status degraded:deadline;
#   6. a real SIGTERM to a long composite run exits 143 with a lintable
#      journal and a final status.json;
#   7. figure-cell fan-out determinism: NISQ_CELL_FANOUT=0 and a
#      4-worker fanned-out run both reproduce the reference bytes;
#   8. a fanned-out victim killed mid-sweep resumes (under fan-out) to
#      the reference bytes with a lintable journal.
#
# Usage: tools/resume_smoke.sh   (from the repo root; builds first)
set -eu

note() { printf '[resume-smoke] %s\n' "$*"; }
die() { printf '[resume-smoke] FAIL: %s\n' "$*" >&2; exit 1; }

# Expected exit code of "$@" (run disowning set -e).
expect_exit() {
  want=$1; shift
  set +e
  "$@"
  got=$?
  set -e
  [ "$got" -eq "$want" ] || die "expected exit $want, got $got: $*"
}

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"
dune build bench/main.exe tools/jsonlint.exe
bench=$root/_build/default/bench/main.exe
jsonlint=$root/_build/default/tools/jsonlint.exe

work=$(mktemp -d "${TMPDIR:-/tmp}/nisq_resume_smoke.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM
cd "$work"

note "reference run (fig5, 2048 trials)"
"$bench" fig5 2048 > ref.txt 2> /dev/null

note "victim run killed at chunk 3 (expects exit 143)"
expect_exit 143 env NISQ_FAULTS=kill:chunk3 "$bench" fig5 2048 \
  --run-id smoke > /dev/null 2> victim.log
grep -q '"status":"interrupted:sigterm"' _runs/smoke/status.json \
  || die "victim status.json missing interrupted:sigterm"
"$jsonlint" --jsonl _runs/smoke/journal.jsonl > /dev/null \
  || die "victim journal does not lint"

note "resume replays the journal"
"$bench" fig5 2048 --resume smoke > resumed.txt 2> resume.log
diff -u ref.txt resumed.txt \
  || die "resumed output differs from the uninterrupted reference"
grep -q 'cells replayed' resume.log || die "resume did not report cache stats"
"$jsonlint" --jsonl _runs/smoke/journal.jsonl > /dev/null

note "identity mismatch is refused (expects exit 2)"
expect_exit 2 "$bench" fig5 512 --resume smoke > /dev/null 2> mismatch.log
grep -q 'resume-force' mismatch.log \
  || die "mismatch refusal does not mention --resume-force"

note "blown deadline checkpoints and exits 3"
expect_exit 3 "$bench" fig5 2048 --deadline 1ms --run-id dl \
  > /dev/null 2> /dev/null
grep -q '"status":"degraded:deadline"' _runs/dl/status.json \
  || die "deadline status.json missing degraded:deadline"
"$jsonlint" --jsonl _runs/dl/journal.jsonl > /dev/null

note "real SIGTERM drains and checkpoints (expects exit 143)"
"$bench" all 4096 --run-id sig > /dev/null 2> /dev/null &
pid=$!
sleep 2
kill -TERM "$pid" 2> /dev/null || true
set +e
wait "$pid"
got=$?
set -e
if [ "$got" -eq 0 ]; then
  note "composite run finished before the signal landed; skipping"
else
  [ "$got" -eq 143 ] || die "SIGTERM victim exited $got, expected 143"
  grep -q '"status":"interrupted:sigterm"' _runs/sig/status.json \
    || die "signal status.json missing interrupted:sigterm"
  "$jsonlint" --jsonl _runs/sig/journal.jsonl > /dev/null
fi

note "cell fan-out disabled reproduces the reference bytes"
env NISQ_CELL_FANOUT=0 "$bench" fig5 2048 > nofan.txt 2> /dev/null
diff -u ref.txt nofan.txt \
  || die "NISQ_CELL_FANOUT=0 output differs from the reference"

note "cell fan-out at 4 domains reproduces the reference bytes"
env NISQ_DOMAINS=4 "$bench" fig5 2048 > fan4.txt 2> /dev/null
diff -u ref.txt fan4.txt \
  || die "fanned-out output differs from the reference"

note "fanned-out victim killed mid-sweep (expects exit 143)"
expect_exit 143 env NISQ_DOMAINS=4 NISQ_FAULTS=kill:chunk2 "$bench" fig5 2048 \
  --run-id cellkill > /dev/null 2> /dev/null
grep -q '"status":"interrupted:sigterm"' _runs/cellkill/status.json \
  || die "cell-kill status.json missing interrupted:sigterm"
"$jsonlint" --jsonl _runs/cellkill/journal.jsonl > /dev/null \
  || die "cell-kill journal does not lint"

note "resume under fan-out replays the journal"
env NISQ_DOMAINS=4 "$bench" fig5 2048 --resume cellkill \
  > cellkill_resumed.txt 2> /dev/null
diff -u ref.txt cellkill_resumed.txt \
  || die "fanned-out resume differs from the uninterrupted reference"
"$jsonlint" --jsonl _runs/cellkill/journal.jsonl > /dev/null

note "OK"
