(* jsonlint — validate JSON files emitted by the telemetry layer.

   Usage: jsonlint [--trace | --jsonl] FILE...

   Parses each file with the same strict parser the test suite uses.
   With --trace, additionally checks the Chrome trace_event shape: a
   top-level object with a non-empty "traceEvents" list whose entries
   carry name/ph/ts/dur fields. With --jsonl, the file is a run journal:
   one JSON object per line, every line (including the last) complete —
   the shape an orderly shutdown must leave behind. Exits non-zero on
   the first failure. *)

module Json = Nisq_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_trace path v =
  let fail msg =
    Printf.eprintf "%s: not a Chrome trace: %s\n" path msg;
    exit 1
  in
  match Json.member "traceEvents" v with
  | None -> fail "missing \"traceEvents\""
  | Some (Json.List []) -> fail "\"traceEvents\" is empty"
  | Some (Json.List events) ->
      List.iteri
        (fun i e ->
          let field name =
            match Json.member name e with
            | Some f -> f
            | None -> fail (Printf.sprintf "event %d: missing %S" i name)
          in
          (match field "name" with
          | Json.String _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"name\" not a string" i));
          (match field "ph" with
          | Json.String _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"ph\" not a string" i));
          (match field "ts" with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"ts\" not a number" i));
          match field "dur" with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"dur\" not a number" i))
        events
  | Some _ -> fail "\"traceEvents\" is not a list"

(* Journal (JSONL) check: every newline-terminated line parses as one
   JSON object. A file not ending in '\n' means a torn final record —
   legal after a crash, but this lint runs on journals that finished an
   orderly shutdown, where it indicates a bug. *)
let check_jsonl path src =
  let fail line msg =
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1
  in
  if String.length src > 0 && src.[String.length src - 1] <> '\n' then
    fail (1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src)
      "torn final record (no trailing newline)";
  let records = ref 0 in
  String.split_on_char '\n' src
  |> List.iteri (fun i line ->
         if String.trim line <> "" then
           match Json.of_string line with
           | Ok (Json.Obj _) -> incr records
           | Ok _ -> fail (i + 1) "record is not a JSON object"
           | Error msg -> fail (i + 1) ("invalid JSON: " ^ msg));
  if !records = 0 then fail 1 "empty journal"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace_mode = List.mem "--trace" args in
  let jsonl_mode = List.mem "--jsonl" args in
  let files = List.filter (fun a -> a <> "--trace" && a <> "--jsonl") args in
  if files = [] || (trace_mode && jsonl_mode) then begin
    prerr_endline "usage: jsonlint [--trace | --jsonl] FILE...";
    exit 2
  end;
  List.iter
    (fun path ->
      let src =
        try read_file path
        with Sys_error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1
      in
      if jsonl_mode then begin
        check_jsonl path src;
        Printf.printf "%s: OK\n" path
      end
      else
        match Json.of_string src with
        | Error msg ->
            Printf.eprintf "%s: invalid JSON: %s\n" path msg;
            exit 1
        | Ok v ->
            if trace_mode then check_trace path v;
            Printf.printf "%s: OK\n" path)
    files
