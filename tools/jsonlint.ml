(* jsonlint — validate JSON files emitted by the telemetry layer.

   Usage: jsonlint [--trace | --jsonl | --bench] FILE...

   Parses each file with the same strict parser the test suite uses.
   With --trace, additionally checks the Chrome trace_event shape: a
   top-level object with a non-empty "traceEvents" list whose entries
   carry name/ph/ts/dur fields. With --jsonl, the file is a run journal:
   one JSON object per line, every line (including the last) complete —
   the shape an orderly shutdown must leave behind. With --bench, each
   file is a BENCH_compile.json baseline (schema nisq-bench-compile/1,
   non-empty "benchmarks" of {name, ns_per_run}); given two or more
   files, their benchmark-name sets must also agree, so CI catches a
   baseline that silently lost a benchmark. Exits non-zero on the first
   failure. *)

module Json = Nisq_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_trace path v =
  let fail msg =
    Printf.eprintf "%s: not a Chrome trace: %s\n" path msg;
    exit 1
  in
  match Json.member "traceEvents" v with
  | None -> fail "missing \"traceEvents\""
  | Some (Json.List []) -> fail "\"traceEvents\" is empty"
  | Some (Json.List events) ->
      List.iteri
        (fun i e ->
          let field name =
            match Json.member name e with
            | Some f -> f
            | None -> fail (Printf.sprintf "event %d: missing %S" i name)
          in
          (match field "name" with
          | Json.String _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"name\" not a string" i));
          (match field "ph" with
          | Json.String _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"ph\" not a string" i));
          (match field "ts" with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"ts\" not a number" i));
          match field "dur" with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"dur\" not a number" i))
        events
  | Some _ -> fail "\"traceEvents\" is not a list"

(* Journal (JSONL) check: every newline-terminated line parses as one
   JSON object. A file not ending in '\n' means a torn final record —
   legal after a crash, but this lint runs on journals that finished an
   orderly shutdown, where it indicates a bug. *)
let check_jsonl path src =
  let fail line msg =
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1
  in
  if String.length src > 0 && src.[String.length src - 1] <> '\n' then
    fail (1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src)
      "torn final record (no trailing newline)";
  let records = ref 0 in
  String.split_on_char '\n' src
  |> List.iteri (fun i line ->
         if String.trim line <> "" then
           match Json.of_string line with
           | Ok (Json.Obj _) -> incr records
           | Ok _ -> fail (i + 1) "record is not a JSON object"
           | Error msg -> fail (i + 1) ("invalid JSON: " ^ msg));
  if !records = 0 then fail 1 "empty journal"

(* Bench baseline check: schema tag, non-empty benchmark list, each
   entry a {name: string, ns_per_run: number}. Returns the sorted name
   list for cross-file comparison. *)
(* Returns the sorted benchmark names of the LATEST entry: /1 files have
   one implicit entry; /2 files carry a trajectory of dated entries and
   the cross-file name-set comparison below applies to the most recent
   one (older entries may predate a benchmark's introduction). *)
let check_bench path v =
  let fail msg =
    Printf.eprintf "%s: not a bench baseline: %s\n" path msg;
    exit 1
  in
  let check_benchmarks ctx e =
    match Json.member "benchmarks" e with
    | None -> fail (ctx ^ "missing \"benchmarks\"")
    | Some (Json.List []) -> fail (ctx ^ "\"benchmarks\" is empty")
    | Some (Json.List entries) ->
        let names =
          List.mapi
            (fun i b ->
              (match Json.member "ns_per_run" b with
              | Some (Json.Int _ | Json.Float _) -> ()
              | Some _ ->
                  fail
                    (Printf.sprintf "%sbenchmark %d: \"ns_per_run\" not a number"
                       ctx i)
              | None ->
                  fail
                    (Printf.sprintf "%sbenchmark %d: missing \"ns_per_run\"" ctx i));
              match Json.member "name" b with
              | Some (Json.String s) -> s
              | Some _ ->
                  fail (Printf.sprintf "%sbenchmark %d: \"name\" not a string" ctx i)
              | None ->
                  fail (Printf.sprintf "%sbenchmark %d: missing \"name\"" ctx i))
            entries
        in
        List.sort_uniq compare names
    | Some _ -> fail (ctx ^ "\"benchmarks\" is not a list")
  in
  match Json.member "schema" v with
  | Some (Json.String "nisq-bench-compile/1") -> check_benchmarks "" v
  | Some (Json.String "nisq-bench-compile/2") -> (
      match Json.member "trajectory" v with
      | None -> fail "missing \"trajectory\""
      | Some (Json.List []) -> fail "\"trajectory\" is empty"
      | Some (Json.List entries) ->
          let last = ref [] in
          List.iteri
            (fun i e ->
              let ctx = Printf.sprintf "trajectory entry %d: " i in
              (match Json.member "date" e with
              | Some (Json.String _) -> ()
              | Some _ -> fail (ctx ^ "\"date\" is not a string")
              | None -> fail (ctx ^ "missing \"date\""));
              last := check_benchmarks ctx e)
            entries;
          !last
      | Some _ -> fail "\"trajectory\" is not a list")
  | Some (Json.String s) -> fail (Printf.sprintf "unknown schema %S" s)
  | Some _ -> fail "\"schema\" is not a string"
  | None -> fail "missing \"schema\""

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace_mode = List.mem "--trace" args in
  let jsonl_mode = List.mem "--jsonl" args in
  let bench_mode = List.mem "--bench" args in
  let files =
    List.filter (fun a -> a <> "--trace" && a <> "--jsonl" && a <> "--bench") args
  in
  let modes = List.filter Fun.id [ trace_mode; jsonl_mode; bench_mode ] in
  if files = [] || List.length modes > 1 then begin
    prerr_endline "usage: jsonlint [--trace | --jsonl | --bench] FILE...";
    exit 2
  end;
  (* (path, sorted benchmark names) per --bench file, for the
     equal-name-set check across files *)
  let bench_names = ref [] in
  List.iter
    (fun path ->
      let src =
        try read_file path
        with Sys_error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1
      in
      if jsonl_mode then begin
        check_jsonl path src;
        Printf.printf "%s: OK\n" path
      end
      else
        match Json.of_string src with
        | Error msg ->
            Printf.eprintf "%s: invalid JSON: %s\n" path msg;
            exit 1
        | Ok v ->
            if trace_mode then check_trace path v;
            if bench_mode then
              bench_names := (path, check_bench path v) :: !bench_names;
            Printf.printf "%s: OK\n" path)
    files;
  match List.rev !bench_names with
  | [] | [ _ ] -> ()
  | (ref_path, ref_names) :: rest ->
      List.iter
        (fun (path, names) ->
          if names <> ref_names then begin
            Printf.eprintf
              "%s: benchmark set differs from %s\n  %s: %s\n  %s: %s\n" path
              ref_path ref_path
              (String.concat ", " ref_names)
              path (String.concat ", " names);
            exit 1
          end)
        rest
