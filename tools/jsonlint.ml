(* jsonlint — validate JSON files emitted by the telemetry layer.

   Usage: jsonlint [--trace | --jsonl | --bench | --report | --prom |
                    --frame | --reload] FILE...

   Parses each file with the same strict parser the test suite uses.
   With --trace, additionally checks the Chrome trace_event shape: a
   top-level object with a non-empty "traceEvents" list whose entries
   carry name/ph/ts/dur fields. With --jsonl, the file is a run journal
   or event ledger: one JSON object per line, every line (including the
   last) complete — the shape an orderly shutdown must leave behind.
   With --bench, each file is a bench baseline (schema
   nisq-bench-compile/1 or /2, or nisq-bench-sim/1; non-empty
   "benchmarks" of {name, ns_per_run}, extra per-entry fields are
   allowed); given two or more files, their benchmark-name sets must
   also agree, so CI catches a baseline that silently lost a benchmark
   — lint compile and sim baselines in separate invocations, since
   their name sets differ by design. With --report, each file is a compile explain report and
   is checked by Nisq_obs.Report.validate (schema, types, and the ESP
   arithmetic invariants). With --prom, each file is a Prometheus
   text-format scrape: every series must follow a # TYPE declaration
   for its family, histogram buckets must be cumulative with a final
   le="+Inf" equal to the _count series. With --frame, each file is a
   wire capture from nisqd call --record: zero or more length-prefixed
   JSON frames, each payload a complete JSON object — a torn trailing
   frame, an oversized length prefix, or a non-object payload fails.
   With --reload, each file is a nisq-reload/1 attempt report from
   nisqd serve --reload-report (or the reload verb's reply payload);
   the decision/failed-stage/stages cross-consistency is enforced, not
   just field shapes. Exits non-zero on the first failure. *)

module Json = Nisq_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_trace path v =
  let fail msg =
    Printf.eprintf "%s: not a Chrome trace: %s\n" path msg;
    exit 1
  in
  match Json.member "traceEvents" v with
  | None -> fail "missing \"traceEvents\""
  | Some (Json.List []) -> fail "\"traceEvents\" is empty"
  | Some (Json.List events) ->
      List.iteri
        (fun i e ->
          let field name =
            match Json.member name e with
            | Some f -> f
            | None -> fail (Printf.sprintf "event %d: missing %S" i name)
          in
          (match field "name" with
          | Json.String _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"name\" not a string" i));
          (match field "ph" with
          | Json.String _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"ph\" not a string" i));
          (match field "ts" with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"ts\" not a number" i));
          match field "dur" with
          | Json.Int _ | Json.Float _ -> ()
          | _ -> fail (Printf.sprintf "event %d: \"dur\" not a number" i))
        events
  | Some _ -> fail "\"traceEvents\" is not a list"

(* Journal (JSONL) check: every newline-terminated line parses as one
   JSON object. A file not ending in '\n' means a torn final record —
   legal after a crash, but this lint runs on journals that finished an
   orderly shutdown, where it indicates a bug. *)
let check_jsonl path src =
  let fail line msg =
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1
  in
  if String.length src > 0 && src.[String.length src - 1] <> '\n' then
    fail (1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 src)
      "torn final record (no trailing newline)";
  let records = ref 0 in
  String.split_on_char '\n' src
  |> List.iteri (fun i line ->
         if String.trim line <> "" then
           match Json.of_string line with
           | Ok (Json.Obj _) -> incr records
           | Ok _ -> fail (i + 1) "record is not a JSON object"
           | Error msg -> fail (i + 1) ("invalid JSON: " ^ msg));
  if !records = 0 then fail 1 "empty journal"

(* Bench baseline check: schema tag, non-empty benchmark list, each
   entry a {name: string, ns_per_run: number}. Returns the sorted name
   list for cross-file comparison. *)
(* Returns the sorted benchmark names of the LATEST entry: /1 files have
   one implicit entry; /2 files carry a trajectory of dated entries and
   the cross-file name-set comparison below applies to the most recent
   one (older entries may predate a benchmark's introduction). *)
let check_bench path v =
  let fail msg =
    Printf.eprintf "%s: not a bench baseline: %s\n" path msg;
    exit 1
  in
  let check_benchmarks ctx e =
    match Json.member "benchmarks" e with
    | None -> fail (ctx ^ "missing \"benchmarks\"")
    | Some (Json.List []) -> fail (ctx ^ "\"benchmarks\" is empty")
    | Some (Json.List entries) ->
        let names =
          List.mapi
            (fun i b ->
              (match Json.member "ns_per_run" b with
              | Some (Json.Int _ | Json.Float _) -> ()
              | Some _ ->
                  fail
                    (Printf.sprintf "%sbenchmark %d: \"ns_per_run\" not a number"
                       ctx i)
              | None ->
                  fail
                    (Printf.sprintf "%sbenchmark %d: missing \"ns_per_run\"" ctx i));
              match Json.member "name" b with
              | Some (Json.String s) -> s
              | Some _ ->
                  fail (Printf.sprintf "%sbenchmark %d: \"name\" not a string" ctx i)
              | None ->
                  fail (Printf.sprintf "%sbenchmark %d: missing \"name\"" ctx i))
            entries
        in
        List.sort_uniq compare names
    | Some _ -> fail (ctx ^ "\"benchmarks\" is not a list")
  in
  match Json.member "schema" v with
  | Some (Json.String "nisq-bench-compile/1") -> check_benchmarks "" v
  | Some (Json.String ("nisq-bench-compile/2" | "nisq-bench-sim/1")) -> (
      match Json.member "trajectory" v with
      | None -> fail "missing \"trajectory\""
      | Some (Json.List []) -> fail "\"trajectory\" is empty"
      | Some (Json.List entries) ->
          let last = ref [] in
          List.iteri
            (fun i e ->
              let ctx = Printf.sprintf "trajectory entry %d: " i in
              (match Json.member "date" e with
              | Some (Json.String _) -> ()
              | Some _ -> fail (ctx ^ "\"date\" is not a string")
              | None -> fail (ctx ^ "missing \"date\""));
              last := check_benchmarks ctx e)
            entries;
          !last
      | Some _ -> fail "\"trajectory\" is not a list")
  | Some (Json.String s) -> fail (Printf.sprintf "unknown schema %S" s)
  | Some _ -> fail "\"schema\" is not a string"
  | None -> fail "missing \"schema\""

(* Prometheus text-exposition (0.0.4) lint. Line-oriented: comments
   declare metadata, series lines carry samples. Beyond well-formedness
   this enforces what a scraper relies on: a # TYPE before the first
   sample of each family, parseable values, histogram buckets cumulative
   (non-decreasing in file order) ending in le="+Inf", and that +Inf
   bucket equal to the family's _count sample. *)
let check_prom path src =
  let fail line msg =
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1
  in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* per histogram family: (le, count) samples in file order *)
  let buckets : (string, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let family name =
    let strip suffix =
      if Filename.check_suffix name suffix then
        Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    let base =
      match strip "_bucket" with
      | Some b -> Some b
      | None -> (
          match strip "_sum" with Some b -> Some b | None -> strip "_count")
    in
    match base with
    | Some b when Hashtbl.find_opt types b = Some "histogram" -> b
    | _ -> name
  in
  let le_of labels ln =
    match String.index_opt labels '"' with
    | Some _ ->
        let marker = "le=\"" in
        let rec find i =
          if i + String.length marker > String.length labels then
            fail ln "bucket without an le label"
          else if String.sub labels i (String.length marker) = marker then
            let start = i + String.length marker in
            let stop =
              match String.index_from_opt labels start '"' with
              | Some j -> j
              | None -> fail ln "unterminated le label"
            in
            String.sub labels start (stop - start)
          else find (i + 1)
        in
        find 0
    | None -> fail ln "bucket without labels"
  in
  let seen_series = ref 0 in
  String.split_on_char '\n' src
  |> List.iteri (fun i line ->
         let ln = i + 1 in
         if line = "" then ()
         else if line.[0] = '#' then
           match String.split_on_char ' ' line with
           | "#" :: "TYPE" :: name :: [ ty ] ->
               if
                 not
                   (List.mem ty
                      [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
               then fail ln (Printf.sprintf "unknown TYPE %S" ty);
               if Hashtbl.mem types name then
                 fail ln (Printf.sprintf "duplicate TYPE for %s" name);
               Hashtbl.replace types name ty
           | "#" :: "TYPE" :: _ -> fail ln "malformed TYPE line"
           | "#" :: "HELP" :: _ :: _ -> ()
           | _ -> fail ln "malformed comment line"
         else begin
           let value_sep =
             match String.rindex_opt line ' ' with
             | Some j -> j
             | None -> fail ln "series line without a value"
           in
           let series = String.sub line 0 value_sep in
           let value = String.sub line (value_sep + 1) (String.length line - value_sep - 1) in
           let value =
             match Float.of_string_opt value with
             | Some f -> f
             | None -> fail ln (Printf.sprintf "unparseable value %S" value)
           in
           let name, labels =
             match String.index_opt series '{' with
             | Some j ->
                 if series.[String.length series - 1] <> '}' then
                   fail ln "unterminated label set";
                 ( String.sub series 0 j,
                   String.sub series (j + 1) (String.length series - j - 2) )
             | None -> (series, "")
           in
           let base = family name in
           (match Hashtbl.find_opt types base with
           | Some _ -> ()
           | None -> fail ln (Printf.sprintf "series %s has no # TYPE" name));
           incr seen_series;
           if Hashtbl.find_opt types base = Some "histogram" then
             if name = base ^ "_bucket" then begin
               let le = le_of labels ln in
               let cell =
                 match Hashtbl.find_opt buckets base with
                 | Some r -> r
                 | None ->
                     let r = ref [] in
                     Hashtbl.replace buckets base r;
                     r
               in
               (match !cell with
               | (_, prev) :: _ when value < prev ->
                   fail ln
                     (Printf.sprintf "%s buckets not cumulative at le=%S" base
                        le)
               | _ -> ());
               cell := (le, value) :: !cell
             end
             else if name = base ^ "_count" then
               Hashtbl.replace counts base value
         end);
  if !seen_series = 0 then fail 1 "no series in scrape";
  Hashtbl.iter
    (fun base cell ->
      (match !cell with
      | ("+Inf", total) :: _ -> (
          match Hashtbl.find_opt counts base with
          | Some c when c <> total ->
              Printf.eprintf "%s: %s le=\"+Inf\" bucket (%g) != _count (%g)\n"
                path base total c;
              exit 1
          | Some _ -> ()
          | None ->
              Printf.eprintf "%s: %s has buckets but no _count\n" path base;
              exit 1)
      | (le, _) :: _ ->
          Printf.eprintf "%s: %s last bucket is le=%S, want +Inf\n" path base le;
          exit 1
      | [] -> ()))
    buckets

(* Frame capture check: the file must decode as concatenated
   length-prefixed frames (the daemon's wire format), every payload a
   JSON object. *)
let check_frames path src =
  let fail msg =
    Printf.eprintf "%s: bad frame capture: %s\n" path msg;
    exit 1
  in
  match Nisq_serve.Frame.scan_string src with
  | Error msg -> fail msg
  | Ok [] -> fail "no frames in capture"
  | Ok frames ->
      List.iteri
        (fun i v ->
          match v with
          | Json.Obj _ -> ()
          | _ -> fail (Printf.sprintf "frame %d payload is not an object" i))
        frames;
      Printf.printf "%s: %d frames\n" path (List.length frames)

let check_report path v =
  match Nisq_obs.Report.validate v with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "%s: not a valid explain report: %s\n" path msg;
      exit 1

(* nisq-reload/1: the daemon's reload-attempt report. Checks the
   decision/stage cross-consistency the smoke test greps for, not just
   field presence: a promoted report must have no failed stage and every
   stage ok; a rolled-back one must name its failed stage in "stages"
   with ok=false and carry at least one reason. *)
let check_reload path v =
  let fail msg =
    Printf.eprintf "%s: not a valid reload report: %s\n" path msg;
    exit 1
  in
  let str name =
    match Json.member name v with
    | Some (Json.String s) -> s
    | Some _ -> fail (Printf.sprintf "%S is not a string" name)
    | None -> fail (Printf.sprintf "missing %S" name)
  in
  let int name =
    match Json.member name v with
    | Some (Json.Int i) -> i
    | Some _ -> fail (Printf.sprintf "%S is not an int" name)
    | None -> fail (Printf.sprintf "missing %S" name)
  in
  (match str "schema" with
  | "nisq-reload/1" -> ()
  | s -> fail (Printf.sprintf "unknown schema %S" s));
  ignore (str "path");
  let live = int "live_epoch" in
  ignore (int "live_day");
  let candidate = int "candidate_epoch" in
  if candidate <= live then
    fail
      (Printf.sprintf "candidate_epoch %d not newer than live_epoch %d"
         candidate live);
  let stages =
    match Json.member "stages" v with
    | Some (Json.List l) -> l
    | Some _ -> fail "\"stages\" is not a list"
    | None -> fail "missing \"stages\""
  in
  if stages = [] then fail "\"stages\" is empty";
  let stage_status =
    List.map
      (fun s ->
        let name =
          match Json.member "stage" s with
          | Some (Json.String n) -> n
          | _ -> fail "stage entry without a \"stage\" name"
        in
        let ok =
          match Json.member "ok" s with
          | Some (Json.Bool b) -> b
          | _ -> fail (Printf.sprintf "stage %S without a boolean \"ok\"" name)
        in
        (name, ok))
      stages
  in
  let reasons =
    match Json.member "reasons" v with
    | Some (Json.List l) -> l
    | Some _ -> fail "\"reasons\" is not a list"
    | None -> fail "missing \"reasons\""
  in
  match str "decision" with
  | "promoted" ->
      (match Json.member "failed_stage" v with
      | Some Json.Null -> ()
      | _ -> fail "promoted report names a failed_stage");
      if List.exists (fun (_, ok) -> not ok) stage_status then
        fail "promoted report contains a failed stage";
      if not (List.mem_assoc "promote" stage_status) then
        fail "promoted report without a \"promote\" stage"
  | "rolled-back" -> (
      if reasons = [] then fail "rolled-back report with no reasons";
      match Json.member "failed_stage" v with
      | Some (Json.String stage) -> (
          match List.assoc_opt stage stage_status with
          | Some false -> ()
          | Some true ->
              fail (Printf.sprintf "failed_stage %S has ok=true" stage)
          | None ->
              fail (Printf.sprintf "failed_stage %S missing from stages" stage))
      | _ -> fail "rolled-back report without a failed_stage string")
  | d -> fail (Printf.sprintf "unknown decision %S" d)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace_mode = List.mem "--trace" args in
  let jsonl_mode = List.mem "--jsonl" args in
  let bench_mode = List.mem "--bench" args in
  let report_mode = List.mem "--report" args in
  let prom_mode = List.mem "--prom" args in
  let frame_mode = List.mem "--frame" args in
  let reload_mode = List.mem "--reload" args in
  let files =
    List.filter
      (fun a ->
        not
          (List.mem a
             [
               "--trace";
               "--jsonl";
               "--bench";
               "--report";
               "--prom";
               "--frame";
               "--reload";
             ]))
      args
  in
  let modes =
    List.filter Fun.id
      [
        trace_mode;
        jsonl_mode;
        bench_mode;
        report_mode;
        prom_mode;
        frame_mode;
        reload_mode;
      ]
  in
  if files = [] || List.length modes > 1 then begin
    prerr_endline
      "usage: jsonlint [--trace | --jsonl | --bench | --report | --prom | \
       --frame | --reload] FILE...";
    exit 2
  end;
  (* (path, sorted benchmark names) per --bench file, for the
     equal-name-set check across files *)
  let bench_names = ref [] in
  List.iter
    (fun path ->
      let src =
        try read_file path
        with Sys_error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1
      in
      if jsonl_mode then begin
        check_jsonl path src;
        Printf.printf "%s: OK\n" path
      end
      else if prom_mode then begin
        check_prom path src;
        Printf.printf "%s: OK\n" path
      end
      else if frame_mode then check_frames path src
      else
        match Json.of_string src with
        | Error msg ->
            Printf.eprintf "%s: invalid JSON: %s\n" path msg;
            exit 1
        | Ok v ->
            if trace_mode then check_trace path v;
            if report_mode then check_report path v;
            if reload_mode then check_reload path v;
            if bench_mode then
              bench_names := (path, check_bench path v) :: !bench_names;
            Printf.printf "%s: OK\n" path)
    files;
  match List.rev !bench_names with
  | [] | [ _ ] -> ()
  | (ref_path, ref_names) :: rest ->
      List.iter
        (fun (path, names) ->
          if names <> ref_names then begin
            Printf.eprintf
              "%s: benchmark set differs from %s\n  %s: %s\n  %s: %s\n" path
              ref_path ref_path
              (String.concat ", " ref_names)
              path (String.concat ", " names);
            exit 1
          end)
        rest
