#!/bin/sh
# End-to-end smoke test for calibration hot-reload.
#
# Exercises the reload pipeline against the real binaries:
#   1. a reference daemon (no reloads) serves a benchmark suite to 4
#      concurrent clients — the replies are the byte-level ground truth;
#   2. a second daemon on the same calibration file takes 4 reload
#      triggers while those same 4 clients are in flight, with one-shot
#      faults poisoning the first three candidates (drift, poison, torn)
#      and stalling the fourth (slow-reload, which must still promote):
#      every client's replies must be byte-identical to the reference —
#      in-flight requests stay pinned to the epoch that admitted them,
#      and the promoted epoch comes from the same file;
#   3. `stats` must account for every attempt: 4 attempts, 1 promotion,
#      3 rollbacks, live epoch 4, zero leaked pins;
#   4. the nisq-reload/1 report round-trips through jsonlint --reload;
#   5. the reload verb with a nonexistent path rolls back (exit 0, the
#      decision is in the reply) and leaves the live epoch untouched;
#   6. drain exits 0 and no socket survives.
#
# Usage: tools/reload_smoke.sh   (from the repo root; builds first)
set -eu

note() { printf '[reload-smoke] %s\n' "$*"; }
die() { printf '[reload-smoke] FAIL: %s\n' "$*" >&2; exit 1; }

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"
dune build bin/nisqd.exe bin/nisqc.exe tools/jsonlint.exe
nisqd=$root/_build/default/bin/nisqd.exe
nisqc=$root/_build/default/bin/nisqc.exe
jsonlint=$root/_build/default/tools/jsonlint.exe

tmp=$(mktemp -d "${TMPDIR:-/tmp}/reload-smoke.XXXXXX")
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

sock=$tmp/nisqd.sock
benchmarks="bv4 bv6 bv8 hs2 hs4 hs6 fredkin or peres toffoli adder qft2"

wait_ready() {
  i=0
  while ! "$nisqd" call -s "$sock" ping >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || die "daemon did not become ready on $sock"
    sleep 0.1
  done
}

wait_daemon() {
  want=$1
  set +e
  wait "$daemon_pid"
  got=$?
  set -e
  daemon_pid=
  [ "$got" -eq "$want" ] || die "daemon exited $got, expected $want"
  [ ! -e "$sock" ] || die "daemon left its socket behind: $sock"
}

run_clients() {
  prefix=$1
  for c in 1 2 3 4; do
    (
      : > "$tmp/$prefix$c.out"
      for b in $benchmarks; do
        "$nisqc" compile "$b" --connect "$sock" >> "$tmp/$prefix$c.out" \
          || exit 1
      done
    ) &
    eval "client$c=\$!"
  done
}

wait_clients() {
  for c in 1 2 3 4; do
    eval "pid=\$client$c"
    wait "$pid" || die "client $c failed"
  done
}

stat_has() {
  grep -q "$1" "$tmp/stats.json" \
    || die "stats missing $1: $(cat "$tmp/stats.json")"
}

"$nisqc" calibration --save "$tmp/calib.txt" >/dev/null

# ---- 1. reference run: same calibration, no reloads -------------------

note "leg 1: reference replies from a reload-free daemon"
"$nisqd" serve -s "$sock" --workers 2 --calib "$tmp/calib.txt" &
daemon_pid=$!
wait_ready
run_clients ref
wait_clients
"$nisqd" call -s "$sock" drain >/dev/null
wait_daemon 0

# ---- 2. reload storm under 4 concurrent clients -----------------------

note "leg 2: 4 reloads (3 faulted, 1 slow-promote) under 4 live clients"
"$nisqd" serve -s "$sock" --workers 2 --calib "$tmp/calib.txt" \
  --reload-report "$tmp/report.json" \
  --events "$tmp/events.jsonl" \
  --inject 'calib:reload-drift@epoch1;calib:reload-poison@epoch2;calib:reload-torn@epoch3;server:slow-reload@epoch4' &
daemon_pid=$!
wait_ready

run_clients live
sleep 0.2
# Candidates 1-3 eat their injected faults and roll back; candidate 4
# stalls on slow-reload and then promotes. All four block until the
# pipeline's decision and exit 0 — the decision is data, not a failure.
for i in 1 2 3 4; do
  "$nisqd" call -s "$sock" reload >/dev/null \
    || die "reload trigger $i did not return a decision"
done
wait_clients

for c in 2 3 4; do
  cmp -s "$tmp/live1.out" "$tmp/live$c.out" \
    || die "client $c replies differ from client 1 under reload"
done
cmp -s "$tmp/ref1.out" "$tmp/live1.out" \
  || die "replies under reload differ from the reload-free reference"
[ "$(wc -l < "$tmp/live1.out")" -eq 12 ] || die "expected 12 replies"
note "4 clients byte-identical to reference through 4 concurrent reloads"

# ---- 3. stats accounting ----------------------------------------------

"$nisqd" call -s "$sock" stats > "$tmp/stats.json"
stat_has '"reloads":{"attempts":4,"promotions":1,"rollbacks":3}'
stat_has '"epoch":4'
stat_has '"live_epochs":1'
stat_has '"pins":0'
note "stats: 4 attempts, 1 promotion, 3 rollbacks, epoch 4, no leaked pins"

# ---- 4. reload report schema ------------------------------------------

"$jsonlint" --reload "$tmp/report.json" >/dev/null \
  || die "reload report failed jsonlint --reload"
grep -q '"decision":"promoted"' "$tmp/report.json" \
  || die "final report should record the slow promotion"
note "nisq-reload/1 report passes jsonlint --reload"

# ---- 5. reload of a missing file rolls back ---------------------------

"$nisqd" call -s "$sock" reload "$tmp/no-such-file.txt" > "$tmp/missing.json"
grep -q '"decision":"rolled-back"' "$tmp/missing.json" \
  || die "reload of a missing file should roll back"
"$nisqd" call -s "$sock" stats > "$tmp/stats.json"
stat_has '"epoch":4'
stat_has '"rollbacks":4'
note "missing-file reload rolled back; live epoch untouched"

# ---- 6. drain ---------------------------------------------------------

"$nisqd" call -s "$sock" drain >/dev/null
wait_daemon 0
"$jsonlint" --jsonl "$tmp/events.jsonl" >/dev/null
grep -q 'rolled back' "$tmp/events.jsonl" \
  || die "no rollback event in the ledger"
grep -q 'promoted' "$tmp/events.jsonl" \
  || die "no promotion event in the ledger"
note "drain: exit 0, socket removed, reload decisions in the ledger"

note "OK"
