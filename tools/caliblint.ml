(* caliblint — validate a calibration archive.

   Usage: caliblint [--strict] FILE...

   Runs each file through the structural parser and the sanitizer,
   printing the repair/quarantine report. Exit codes:

     0  every file is structurally valid and every field is clean
     1  a file needed repairs or quarantines (still loadable; with
        --strict this is a failure, without it a warning)
     2  a file is structurally broken (missing topology/qubit/edge
        records, unknown syntax) and cannot be loaded at all

   Without --strict, repaired files exit 0: the sanitizer makes them
   usable, which is the point of degraded-mode loading. *)

module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Calibration = Nisq_device.Calibration

let lint ~strict path =
  match Calib_io.load_raw ~path with
  | Error { Calib_io.line; message } ->
      if line > 0 then Printf.eprintf "%s:%d: %s\n" path line message
      else Printf.eprintf "%s: %s\n" path message;
      2
  | Ok raw ->
      let calib, report = Calib_sanitize.sanitize raw in
      if Calib_sanitize.is_clean report then begin
        Printf.printf "%s: ok (%d qubits, day %d)\n" path
          (Nisq_device.Topology.num_qubits calib.Calibration.topology)
          calib.Calibration.day;
        0
      end
      else begin
        Printf.printf "%s: %d repairs, %d qubits + %d links quarantined\n"
          path
          (Calib_sanitize.repairs report)
          (List.length report.Calib_sanitize.quarantined_qubits)
          (List.length report.Calib_sanitize.quarantined_links);
        print_string (Calib_sanitize.render report);
        if strict then 1 else 0
      end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let strict = List.mem "--strict" args in
  let files = List.filter (fun a -> a <> "--strict") args in
  if files = [] then begin
    prerr_endline "usage: caliblint [--strict] FILE...";
    exit 2
  end;
  exit (List.fold_left (fun worst path -> max worst (lint ~strict path)) 0 files)
