(* caliblint — validate a calibration archive, or diff two of them.

   Usage: caliblint [--strict] FILE...
          caliblint --diff [--json] OLD NEW

   Lint mode runs each file through the structural parser and the
   sanitizer, printing the repair/quarantine report. Exit codes:

     0  every file is structurally valid and every field is clean
     1  a file needed repairs or quarantines (still loadable; with
        --strict this is a failure, without it a warning)
     2  a file is structurally broken (missing topology/qubit/edge
        records, unknown syntax) and cannot be loaded at all

   Without --strict, repaired files exit 0: the sanitizer makes them
   usable, which is the point of degraded-mode loading.

   Diff mode prints the reload pipeline's drift report for NEW against
   OLD — the same Calib_diff the daemon's drift gate runs, so an exit-1
   here predicts a reload rollback at the drift stage. Exit codes:

     0  NEW passes the drift gate against OLD
     1  drift exceeds the default thresholds (reasons on stdout)
     2  either file is unloadable or the topologies differ

   --json emits the nisq-calib-diff/1 report instead of text. *)

module Calib_io = Nisq_device.Calib_io
module Calib_sanitize = Nisq_device.Calib_sanitize
module Calib_diff = Nisq_device.Calib_diff
module Calibration = Nisq_device.Calibration

let lint ~strict path =
  match Calib_io.load_raw ~path with
  | Error { Calib_io.line; message } ->
      if line > 0 then Printf.eprintf "%s:%d: %s\n" path line message
      else Printf.eprintf "%s: %s\n" path message;
      2
  | Ok raw ->
      let calib, report = Calib_sanitize.sanitize raw in
      if Calib_sanitize.is_clean report then begin
        Printf.printf "%s: ok (%d qubits, day %d)\n" path
          (Nisq_device.Topology.num_qubits calib.Calibration.topology)
          calib.Calibration.day;
        0
      end
      else begin
        Printf.printf "%s: %d repairs, %d qubits + %d links quarantined\n"
          path
          (Calib_sanitize.repairs report)
          (List.length report.Calib_sanitize.quarantined_qubits)
          (List.length report.Calib_sanitize.quarantined_links);
        print_string (Calib_sanitize.render report);
        if strict then 1 else 0
      end

(* Diff mode loads leniently — a repaired file is comparable; what
   matters is what the daemon would end up serving. *)
let load_sanitized path =
  match Calib_io.load_raw ~path with
  | Error { Calib_io.line; message } ->
      if line > 0 then Printf.eprintf "%s:%d: %s\n" path line message
      else Printf.eprintf "%s: %s\n" path message;
      exit 2
  | Ok raw -> fst (Calib_sanitize.sanitize raw)

let diff ~json old_path new_path =
  let old_ = load_sanitized old_path in
  let candidate = load_sanitized new_path in
  match Calib_diff.diff ~old_ ~candidate with
  | exception Invalid_argument msg ->
      Printf.eprintf "caliblint: %s vs %s: %s\n" old_path new_path msg;
      2
  | d ->
      let reasons = Calib_diff.gate d in
      if json then print_endline (Nisq_obs.Json.to_string (Calib_diff.to_json d))
      else begin
        Printf.printf "%s -> %s\n" old_path new_path;
        print_string (Calib_diff.render d)
      end;
      if reasons = [] then 0
      else begin
        List.iter (fun r -> Printf.printf "drift gate: %s\n" r) reasons;
        1
      end

let usage () =
  prerr_endline "usage: caliblint [--strict] FILE...";
  prerr_endline "       caliblint --diff [--json] OLD NEW";
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--diff" args then begin
    let json = List.mem "--json" args in
    match List.filter (fun a -> a <> "--diff" && a <> "--json") args with
    | [ old_path; new_path ] -> exit (diff ~json old_path new_path)
    | _ -> usage ()
  end;
  let strict = List.mem "--strict" args in
  let files = List.filter (fun a -> a <> "--strict") args in
  if files = [] then usage ();
  exit (List.fold_left (fun worst path -> max worst (lint ~strict path)) 0 files)
