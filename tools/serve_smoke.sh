#!/bin/sh
# End-to-end smoke test for the nisqd compile service.
#
# Exercises the serving story against the real binaries:
#   1. a fault-injected daemon (torn reply frame at one request, a
#      handler crash at another) serves the full Table 2 suite to 4
#      concurrent clients — every client retries through the faults and
#      all four end up with byte-identical reply sets;
#   2. an overloaded daemon (1 worker, queue of 1, one injected-slow
#      request pinning the worker) sheds load with structured
#      overloaded replies; clients back off per the server's
#      retry_after_ms hint and all eventually succeed, while the
#      deliberately slow request dies with a non-retryable deadline
#      error (exit 4);
#   3. a --record wire capture round-trips through jsonlint --frame;
#   4. the drain verb exits 0; SIGTERM drains and exits 143;
#   5. no socket or temp files survive any of it.
#
# Usage: tools/serve_smoke.sh   (from the repo root; builds first)
set -eu

note() { printf '[serve-smoke] %s\n' "$*"; }
die() { printf '[serve-smoke] FAIL: %s\n' "$*" >&2; exit 1; }

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"
dune build bin/nisqd.exe bin/nisqc.exe tools/jsonlint.exe
nisqd=$root/_build/default/bin/nisqd.exe
nisqc=$root/_build/default/bin/nisqc.exe
jsonlint=$root/_build/default/tools/jsonlint.exe

tmp=$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")
daemon_pid=
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

sock=$tmp/nisqd.sock
benchmarks="bv4 bv6 bv8 hs2 hs4 hs6 fredkin or peres toffoli adder qft2"

wait_ready() {
  i=0
  while ! "$nisqd" call -s "$sock" ping >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || die "daemon did not become ready on $sock"
    sleep 0.1
  done
}

wait_daemon() {
  want=$1
  set +e
  wait "$daemon_pid"
  got=$?
  set -e
  daemon_pid=
  [ "$got" -eq "$want" ] || die "daemon exited $got, expected $want"
  [ ! -e "$sock" ] || die "daemon left its socket behind: $sock"
}

# ---- 1. fault-injected serving, 4 concurrent clients ------------------

note "leg 1: 12 benchmarks x 4 clients under net:torn + server:crash-handler"
"$nisqd" serve -s "$sock" --workers 2 \
  --inject 'net:torn@req2;server:crash-handler@req5' \
  --events "$tmp/events1.jsonl" &
daemon_pid=$!
wait_ready

for c in 1 2 3 4; do
  (
    : > "$tmp/client$c.out"
    for b in $benchmarks; do
      "$nisqc" compile "$b" --connect "$sock" >> "$tmp/client$c.out" \
        || exit 1
    done
  ) &
  eval "client$c=\$!"
done
for c in 1 2 3 4; do
  eval "pid=\$client$c"
  wait "$pid" || die "client $c failed"
done

for c in 2 3 4; do
  cmp -s "$tmp/client1.out" "$tmp/client$c.out" \
    || die "client $c replies differ from client 1 (determinism broken)"
done
[ "$(wc -l < "$tmp/client1.out")" -eq 12 ] || die "expected 12 replies"
note "4 clients, byte-identical reply sets through injected faults"

"$nisqd" call -s "$sock" drain >/dev/null
wait_daemon 0
"$jsonlint" --jsonl "$tmp/events1.jsonl" >/dev/null
grep -q 'handler crashed' "$tmp/events1.jsonl" \
  || die "no handler-crash event recorded"
note "drain verb: exit 0, socket removed, crash handled in-ledger"

# ---- 2. overload: shed, retry_after, deadline -------------------------

note "leg 2: 1 worker + queue of 1 under server:slow -> shed + retries"
"$nisqd" serve -s "$sock" --workers 1 --queue 1 \
  --default-deadline-ms 600 --inject 'server:slow@req0' \
  --events "$tmp/events2.jsonl" &
daemon_pid=$!
wait_ready

# The first work request eats the slow fault and pins the worker until
# its deadline: a non-retryable deadline error, exit 4.
"$nisqd" call -s "$sock" compile bv4 >/dev/null 2>&1 &
slow_pid=$!
sleep 0.2

# Three different programs (distinct coalesce keys) against a full
# queue: at least one is shed and must retry its way in.
for b in bv6 hs2 adder; do
  "$nisqd" call -s "$sock" compile "$b" --attempts 10 >/dev/null &
  eval "over_$b=\$!"
done
for b in bv6 hs2 adder; do
  eval "pid=\$over_$b"
  wait "$pid" || die "overloaded client for $b did not recover"
done
set +e
wait "$slow_pid"
slow_got=$?
set -e
[ "$slow_got" -eq 4 ] || die "slow request exited $slow_got, expected 4 (deadline)"

"$nisqd" call -s "$sock" drain >/dev/null
wait_daemon 0
grep -q 'shedding' "$tmp/events2.jsonl" || die "no shed event recorded"
note "shed + recover verified; slow request died on its deadline"

# ---- 3. wire capture --------------------------------------------------

note "leg 3: --record capture through jsonlint --frame"
"$nisqd" serve -s "$sock" &
daemon_pid=$!
wait_ready
"$nisqd" call -s "$sock" compile bv4 --record "$tmp/wire.bin" >/dev/null
"$jsonlint" --frame "$tmp/wire.bin" >/dev/null || die "frame capture invalid"

# ---- 4. SIGTERM drain -------------------------------------------------

note "leg 4: SIGTERM -> graceful drain, exit 143"
kill -TERM "$daemon_pid"
wait_daemon 143

note "OK"
