(* benchwatch — the bench-trajectory regression sentinel behind
   `make bench-gate`.

   Usage: benchwatch [--threshold R] [--window N] FILE...

   Each FILE is a BENCH_compile.json baseline; the latest trajectory
   entry is compared against the median of up to N (default 5) prior
   entries per micro-benchmark, and any benchmark slower than R
   (default 1.5) times its baseline fails the gate. Exit 0 when every
   file passes, 1 on any regression or unreadable file, 2 on usage
   errors. *)

module Json = Nisq_obs.Json
module Benchwatch = Nisq_bench.Benchwatch

let usage () =
  prerr_endline "usage: benchwatch [--threshold R] [--window N] FILE...";
  exit 2

let () =
  let threshold = ref 1.5 and window = ref 5 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match Float.of_string_opt v with
        | Some f when f > 0.0 -> threshold := f
        | _ -> usage ());
        parse rest
    | "--window" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> window := n
        | _ -> usage ());
        parse rest
    | ("--threshold" | "--window") :: [] -> usage ()
    | f :: rest ->
        if String.length f > 1 && f.[0] = '-' then usage ();
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then usage ();
  let failed = ref false in
  List.iter
    (fun path ->
      let src =
        try In_channel.with_open_bin path In_channel.input_all
        with Sys_error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 1
      in
      match Json.of_string src with
      | Error msg ->
          Printf.eprintf "%s: invalid JSON: %s\n" path msg;
          exit 1
      | Ok v -> (
          match
            Benchwatch.analyze ~threshold:!threshold ~window:!window v
          with
          | Error msg ->
              Printf.eprintf "%s: %s\n" path msg;
              exit 1
          | Ok a ->
              Printf.printf "%s:\n%s" path (Benchwatch.render a);
              if a.Benchwatch.failures > 0 then failed := true))
    files;
  if !failed then exit 1
